//! Deterministic fault injection for testing the recovery machinery.
//!
//! A [`FaultPlan`] scripts failures at exact points of a run: "panic rank 1
//! of the team in layer 2, but only on attempt 1", "delay rank 0 by 5 ms in
//! layer 0", "lose worker 3 in layer 1".  The plan travels with the run
//! (see [`RunOptions`](crate::RunOptions)) and is consulted by each worker
//! at each layer, so injected faults are reproducible — no timing races, no
//! environment variables.
//!
//! Ranks are **logical team ranks for the attempt**: position in the
//! current roster (`0..alive_workers`), not physical worker indices.  After
//! a worker loss the survivors are re-ranked contiguously, so a plan keyed
//! on logical ranks stays meaningful across shrink-and-continue.

use std::time::Duration;

/// What an injected fault does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before executing the layer's tasks (caught and converted to
    /// [`ExecError::TaskPanicked`](crate::ExecError::TaskPanicked)).
    Panic,
    /// Sleep before executing the layer's tasks (exercises stragglers and
    /// abort latency).
    Delay(Duration),
    /// Permanently remove the worker from the team (exercises
    /// shrink-and-continue / [`ExecError::WorkerLost`](crate::ExecError::WorkerLost)).
    Lose,
}

/// One scripted fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultAction {
    /// Layer index the fault fires in.
    pub layer: usize,
    /// Logical team rank the fault fires on (see module docs).
    pub rank: usize,
    /// Attempt the fault fires on (1-based); `None` fires on every attempt.
    pub attempt: Option<u32>,
    /// What happens.
    pub kind: FaultKind,
}

/// A scripted set of faults for one run.  Empty by default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Script a panic of `rank` in `layer` on `attempt` (1-based).
    pub fn panic_at(mut self, layer: usize, rank: usize, attempt: u32) -> Self {
        assert!(attempt >= 1, "attempts are 1-based");
        self.actions.push(FaultAction {
            layer,
            rank,
            attempt: Some(attempt),
            kind: FaultKind::Panic,
        });
        self
    }

    /// Script a delay of `rank` in `layer` on every attempt.
    pub fn delay(mut self, layer: usize, rank: usize, by: Duration) -> Self {
        self.actions.push(FaultAction {
            layer,
            rank,
            attempt: None,
            kind: FaultKind::Delay(by),
        });
        self
    }

    /// Script the permanent loss of `rank` in `layer` on `attempt`
    /// (1-based).
    pub fn lose_at(mut self, layer: usize, rank: usize, attempt: u32) -> Self {
        assert!(attempt >= 1, "attempts are 1-based");
        self.actions.push(FaultAction {
            layer,
            rank,
            attempt: Some(attempt),
            kind: FaultKind::Lose,
        });
        self
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The scripted actions.
    pub fn actions(&self) -> &[FaultAction] {
        &self.actions
    }

    /// Faults that fire for `rank` executing `layer` on `attempt`.
    pub(crate) fn firing(
        &self,
        layer: usize,
        rank: usize,
        attempt: u32,
    ) -> impl Iterator<Item = &FaultKind> {
        self.actions.iter().filter_map(move |a| {
            let attempt_matches = a.attempt.is_none_or(|at| at == attempt);
            (a.layer == layer && a.rank == rank && attempt_matches).then_some(&a.kind)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firing_matches_layer_rank_attempt() {
        let plan = FaultPlan::new()
            .panic_at(1, 0, 1)
            .delay(1, 0, Duration::from_millis(1))
            .lose_at(2, 3, 2);
        let kinds: Vec<_> = plan.firing(1, 0, 1).collect();
        assert_eq!(
            kinds,
            vec![
                &FaultKind::Panic,
                &FaultKind::Delay(Duration::from_millis(1))
            ]
        );
        // Attempt 2: the one-shot panic no longer fires, the delay does.
        let kinds: Vec<_> = plan.firing(1, 0, 2).collect();
        assert_eq!(kinds, vec![&FaultKind::Delay(Duration::from_millis(1))]);
        assert_eq!(plan.firing(2, 3, 2).count(), 1);
        assert_eq!(plan.firing(2, 3, 1).count(), 0);
        assert_eq!(plan.firing(0, 0, 1).count(), 0);
    }
}
