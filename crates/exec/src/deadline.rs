//! Prediction-derived layer deadlines and the fail-slow recovery policy.
//!
//! The paper's premise is that `T(M, q, mp)` predicts task time well; a
//! [`DeadlinePolicy`] turns those predictions into actionable liveness
//! bounds: layer `l` of a run is *over deadline* once its wall clock
//! exceeds `budget[l] × slack` (floored at
//! [`min_deadline`](DeadlinePolicy::min_deadline)).  The slack factor
//! absorbs model error — feed it from the observed reconciliation error
//! with [`with_reconciliation`](DeadlinePolicy::with_reconciliation) so a
//! badly calibrated model widens its own deadlines instead of flagging
//! healthy layers.
//!
//! On a missed deadline the monitor classifies each laggard by heartbeat
//! age: a rank still stamping is a **straggler** and is, under
//! [`MissAction::Hedge`], raced by a speculative duplicate of its group
//! slice (first finisher wins, the loser is cancelled through the existing
//! communicator-poison path); a rank silent for longer than
//! [`dead_after`](DeadlinePolicy::dead_after) is **dead** and is demoted to
//! lost, reusing shrink-and-continue replanning.  Independently,
//! [`global_timeout`](DeadlinePolicy::global_timeout) is the hard
//! wedge-breaker: if a whole attempt overruns it, every rank still running
//! is demoted and the run surfaces
//! [`ExecError::WatchdogTimeout`](crate::ExecError::WatchdogTimeout).

use pt_obs::Reconciliation;
use std::time::Duration;

/// What the monitor does to a *straggler* (a laggard with fresh
/// heartbeats) once its layer is over deadline.  Laggards with stale
/// heartbeats are always demoted, whatever the action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissAction {
    /// Race a speculative duplicate of the straggling group's layer slice;
    /// the first finisher wins (the default).
    #[default]
    Hedge,
    /// Demote the straggler to lost immediately.
    ///
    /// Only safe when stragglers are known not to write to the store after
    /// demotion (e.g. injected stalls): a demoted-but-alive worker keeps
    /// running until its next cancellation point.
    Demote,
}

/// Fail-slow detection and recovery policy for one run
/// (carried in [`RunOptions::deadline`](crate::RunOptions)).
#[derive(Debug, Clone)]
pub struct DeadlinePolicy {
    /// Predicted wall-clock budget per layer.  Empty disables per-layer
    /// deadlines (the global watchdog, if set, still applies).
    pub layer_budgets: Vec<Duration>,
    /// Multiplier on each budget (model-error headroom, ≥ 1).
    pub slack: f64,
    /// Floor of every effective deadline — keeps µs-scale predictions
    /// from producing deadlines shorter than scheduling jitter.
    pub min_deadline: Duration,
    /// Heartbeat age beyond which a laggard counts as dead, not straggling.
    pub dead_after: Duration,
    /// What to do with stragglers on a missed deadline.
    pub action: MissAction,
    /// Cap on hedges spawned per attempt.
    pub max_hedges: u32,
    /// Monitor tick interval.
    pub poll: Duration,
    /// Hard bound on one attempt's wall clock; `None` disables the global
    /// watchdog.
    pub global_timeout: Option<Duration>,
}

impl DeadlinePolicy {
    fn base() -> DeadlinePolicy {
        DeadlinePolicy {
            layer_budgets: Vec::new(),
            slack: 2.0,
            min_deadline: Duration::from_millis(20),
            dead_after: Duration::from_millis(300),
            action: MissAction::Hedge,
            max_hedges: 4,
            poll: Duration::from_millis(2),
            global_timeout: None,
        }
    }

    /// Policy with explicit per-layer budgets.
    pub fn from_budgets(budgets: Vec<Duration>) -> DeadlinePolicy {
        DeadlinePolicy {
            layer_budgets: budgets,
            ..DeadlinePolicy::base()
        }
    }

    /// Policy from predicted layer times in seconds (e.g. the cost model's
    /// per-layer critical path), scaled by `scale` into wall-clock seconds
    /// — the bridge from `CostTable` predictions to deadlines.
    pub fn from_predictions(predicted_s: &[f64], scale: f64) -> DeadlinePolicy {
        let budgets = predicted_s
            .iter()
            .map(|&s| Duration::from_secs_f64((s * scale).max(0.0)))
            .collect();
        DeadlinePolicy::from_budgets(budgets)
    }

    /// Watchdog-only policy: no per-layer deadlines, just a hard bound on
    /// the attempt's wall clock.
    pub fn watchdog(global: Duration) -> DeadlinePolicy {
        DeadlinePolicy {
            global_timeout: Some(global),
            ..DeadlinePolicy::base()
        }
    }

    /// Set the slack multiplier (clamped to ≥ 1).
    pub fn with_slack(mut self, slack: f64) -> DeadlinePolicy {
        self.slack = slack.max(1.0);
        self
    }

    /// Widen the slack to cover the observed prediction error: the final
    /// slack is `max(current, reconciliation.suggested_slack())`.
    pub fn with_reconciliation(self, rec: &Reconciliation) -> DeadlinePolicy {
        let s = self.slack.max(rec.suggested_slack());
        self.with_slack(s)
    }

    /// Set the effective-deadline floor.
    pub fn with_min_deadline(mut self, min: Duration) -> DeadlinePolicy {
        self.min_deadline = min;
        self
    }

    /// Set the dead-heartbeat threshold.
    pub fn with_dead_after(mut self, after: Duration) -> DeadlinePolicy {
        self.dead_after = after;
        self
    }

    /// Set the straggler action.
    pub fn with_action(mut self, action: MissAction) -> DeadlinePolicy {
        self.action = action;
        self
    }

    /// Set the per-attempt hedge cap.
    pub fn with_max_hedges(mut self, n: u32) -> DeadlinePolicy {
        self.max_hedges = n;
        self
    }

    /// Set the monitor tick interval.
    pub fn with_poll(mut self, poll: Duration) -> DeadlinePolicy {
        self.poll = poll;
        self
    }

    /// Set (or clear) the global watchdog bound.
    pub fn with_global_timeout(mut self, bound: Option<Duration>) -> DeadlinePolicy {
        self.global_timeout = bound;
        self
    }

    /// Effective deadline of `layer`: `budget × slack`, floored at
    /// [`min_deadline`](Self::min_deadline); `None` when the layer has no
    /// budget.
    pub fn effective_deadline(&self, layer: usize) -> Option<Duration> {
        let budget = *self.layer_budgets.get(layer)?;
        Some(budget.mul_f64(self.slack).max(self.min_deadline))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_mtask::TaskId;
    use pt_obs::TaskSample;

    #[test]
    fn effective_deadline_applies_slack_and_floor() {
        let p = DeadlinePolicy::from_budgets(vec![
            Duration::from_millis(100),
            Duration::from_micros(10),
        ])
        .with_slack(3.0)
        .with_min_deadline(Duration::from_millis(5));
        assert_eq!(p.effective_deadline(0), Some(Duration::from_millis(300)));
        // 30 µs × slack is under the floor.
        assert_eq!(p.effective_deadline(1), Some(Duration::from_millis(5)));
        assert_eq!(p.effective_deadline(2), None);
        // Slack never drops below 1.
        assert_eq!(p.with_slack(0.1).slack, 1.0);
    }

    #[test]
    fn from_predictions_scales_seconds() {
        let p = DeadlinePolicy::from_predictions(&[1e-3, 2e-3], 10.0).with_slack(1.0);
        assert_eq!(p.layer_budgets[0], Duration::from_millis(10));
        assert_eq!(p.layer_budgets[1], Duration::from_millis(20));
    }

    #[test]
    fn watchdog_only_policy_has_no_layer_deadlines() {
        let p = DeadlinePolicy::watchdog(Duration::from_secs(5));
        assert!(p.layer_budgets.is_empty());
        assert_eq!(p.effective_deadline(0), None);
        assert_eq!(p.global_timeout, Some(Duration::from_secs(5)));
    }

    #[test]
    fn reconciliation_widens_slack_monotonically() {
        // 100% worst-case error suggests 1 + 2·1 = 3×.
        let rec = Reconciliation::build(vec![TaskSample {
            task: TaskId(0),
            name: "t".into(),
            layer: 0,
            predicted: Some(2.0),
            simulated: None,
            measured: Some(1.0),
        }]);
        let p = DeadlinePolicy::from_budgets(vec![]).with_slack(1.5);
        assert!((p.with_reconciliation(&rec).slack - 3.0).abs() < 1e-12);
        // An already-wider slack is kept.
        let p = DeadlinePolicy::from_budgets(vec![]).with_slack(5.0);
        assert_eq!(p.with_reconciliation(&rec).slack, 5.0);
    }
}
