//! The worker-thread team executing M-task programs.

use crate::program::Program;
use crate::store::DataStore;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

enum Msg {
    Run(Arc<Program>, Arc<DataStore>),
    Shutdown,
}

/// A persistent team of worker threads.
///
/// Each worker owns a team index; running a [`Program`] hands every worker
/// the full plan — a worker executes the tasks of the group containing its
/// index (SPMD, using the group's communicator) and joins the team-wide
/// barrier at every layer boundary, which implements the paper's
/// layer-by-layer execution with re-distribution visibility through the
/// shared [`DataStore`].
pub struct Team {
    size: usize,
    senders: Vec<Sender<Msg>>,
    done_rx: Receiver<std::thread::Result<()>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team").field("size", &self.size).finish()
    }
}

impl Team {
    /// Spawn a team of `size` workers.
    pub fn new(size: usize) -> Team {
        assert!(size >= 1, "team needs at least one worker");
        let layer_barrier = Arc::new(Barrier::new(size));
        let (done_tx, done_rx) = bounded(size);
        let mut senders = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for idx in 0..size {
            let (tx, rx) = bounded::<Msg>(1);
            senders.push(tx);
            let barrier = layer_barrier.clone();
            let done = done_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pt-worker-{idx}"))
                    .spawn(move || worker_loop(idx, rx, barrier, done))
                    .expect("spawn worker"),
            );
        }
        Team {
            size,
            senders,
            done_rx,
            handles,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Execute a program to completion; returns the wall-clock duration.
    ///
    /// # Panics
    /// Panics if the program needs more workers than the team has, if its
    /// groups overlap, or if a task body panicked.
    pub fn run(&self, program: &Program, store: &Arc<DataStore>) -> Duration {
        assert!(
            program.required_workers() <= self.size,
            "program needs {} workers, team has {}",
            program.required_workers(),
            self.size
        );
        program.validate().expect("invalid program");
        let program = Arc::new(program.clone());
        let start = Instant::now();
        for tx in &self.senders {
            tx.send(Msg::Run(program.clone(), store.clone()))
                .expect("worker alive");
        }
        for _ in 0..self.size {
            if let Err(panic) = self.done_rx.recv().expect("worker alive") {
                std::panic::resume_unwind(panic);
            }
        }
        start.elapsed()
    }
}

impl Drop for Team {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    idx: usize,
    rx: Receiver<Msg>,
    layer_barrier: Arc<Barrier>,
    done: Sender<std::thread::Result<()>>,
) {
    while let Ok(Msg::Run(program, store)) = rx.recv() {
        // A panic in a task body must not desynchronise the team barriers:
        // the worker records the panic, skips its remaining tasks, but keeps
        // joining every layer barrier.  (A panic *inside* a group collective
        // can still wedge that group's peers — collectives assume all ranks
        // arrive — which is the same contract MPI imposes.)
        let mut outcome: std::thread::Result<()> = Ok(());
        for layer in &program.layers {
            if outcome.is_ok() {
                if let Some((group, rank)) = Program::find_role(layer, idx) {
                    let ctx = crate::program::TaskCtx {
                        rank,
                        size: group.workers.len(),
                        comm: &group.comm,
                        store: &store,
                    };
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        for task in &group.tasks {
                            task(&ctx);
                        }
                    }));
                    if let Err(e) = r {
                        outcome = Err(e);
                    }
                }
            }
            // Layer barrier: re-distributions (DataStore writes) become
            // visible to every group before the next layer starts.
            layer_barrier.wait();
        }
        let _ = done.send(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{GroupPlan, TaskCtx, TaskFn};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn two_groups_run_concurrently_and_join_layers() {
        let team = Team::new(4);
        let store = DataStore::new();
        store.put("sum0", vec![0.0]);
        store.put("sum1", vec![0.0]);
        // Layer 1: each group of 2 allreduces its ranks and publishes.
        let make = |name: &'static str| -> Arc<TaskFn> {
            Arc::new(move |ctx: &TaskCtx| {
                let mut v = vec![ctx.rank as f64 + 1.0];
                ctx.comm.allreduce_sum(ctx.rank, &mut v);
                if ctx.rank == 0 {
                    ctx.store.put(name, v);
                }
            })
        };
        // Layer 2: one group of 4 adds both sums.
        let combine: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            if ctx.rank == 0 {
                let a = ctx.store.get("sum0").unwrap()[0];
                let b = ctx.store.get("sum1").unwrap()[0];
                ctx.store.put("total", vec![a + b]);
            }
        });
        let mut program = Program::single_layer(vec![
            GroupPlan::new(0..2, vec![make("sum0")]),
            GroupPlan::new(2..4, vec![make("sum1")]),
        ]);
        program.push_layer(vec![GroupPlan::new(0..4, vec![combine])]);
        team.run(&program, &store);
        assert_eq!(store.get("total").unwrap(), vec![6.0]); // (1+2) + (1+2)
    }

    #[test]
    fn all_workers_participate() {
        let team = Team::new(8);
        let store = DataStore::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let task: Arc<TaskFn> = Arc::new(move |_ctx: &TaskCtx| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..8, vec![task])]);
        team.run(&program, &store);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn sequential_tasks_within_group_are_ordered() {
        let team = Team::new(2);
        let store = DataStore::new();
        store.put("log", vec![]);
        let t1: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            ctx.comm.barrier();
            if ctx.rank == 0 {
                ctx.store.put("log", vec![1.0]);
            }
            ctx.comm.barrier();
        });
        let t2: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            ctx.comm.barrier();
            if ctx.rank == 0 {
                let mut l = ctx.store.get("log").unwrap();
                l.push(2.0);
                ctx.store.put("log", l);
            }
            ctx.comm.barrier();
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![t1, t2])]);
        team.run(&program, &store);
        assert_eq!(store.get("log").unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn team_is_reusable_across_runs() {
        let team = Team::new(3);
        let store = DataStore::new();
        for round in 0..5 {
            let task: Arc<TaskFn> = Arc::new(move |ctx: &TaskCtx| {
                if ctx.rank == 0 {
                    ctx.store.put("round", vec![round as f64]);
                }
            });
            let program = Program::single_layer(vec![GroupPlan::new(0..3, vec![task])]);
            team.run(&program, &store);
            assert_eq!(store.get("round").unwrap(), vec![round as f64]);
        }
    }

    #[test]
    fn idle_workers_do_not_block_layers() {
        // Program uses only 2 of 4 workers; the others still hit the layer
        // barrier and the run completes.
        let team = Team::new(4);
        let store = DataStore::new();
        let task: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            let mut v = vec![1.0];
            ctx.comm.allreduce_sum(ctx.rank, &mut v);
            if ctx.rank == 0 {
                ctx.store.put("n", v);
            }
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![task])]);
        team.run(&program, &store);
        assert_eq!(store.get("n").unwrap(), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "program needs")]
    fn oversized_program_rejected() {
        let team = Team::new(2);
        let store = DataStore::new();
        let t: Vec<Arc<TaskFn>> = vec![];
        let program = Program::single_layer(vec![GroupPlan::new(0..4, t)]);
        team.run(&program, &store);
    }
}
