//! The worker-thread team executing M-task programs, with fault tolerance.
//!
//! # Failure semantics
//!
//! Running a [`Program`] returns `Result<Duration, ExecError>`.  A panic in
//! a task body no longer brings the run down by unwinding into the caller
//! (and no longer risks wedging peers inside a group collective, the old
//! caveat): the failing worker records the failure, its group communicator
//! is poisoned so peers blocked in a collective unwind with a
//! [`CollectiveAborted`] sentinel, every worker re-joins the team barrier
//! at the layer boundary, and the run reports a typed
//! [`ExecError::TaskPanicked`] in bounded time.  The team and the caller's
//! program remain usable for subsequent runs.
//!
//! # Layer-granular recovery
//!
//! With a [`RetryPolicy`] of more than one attempt
//! ([`Team::run_with`]), the team snapshots the [`DataStore`] at each layer
//! boundary, rolls it back when a layer fails, and re-executes from the
//! failed layer — later layers never re-run, earlier layers are never
//! repeated.  On *permanent* worker loss the remaining layers are re-planned
//! onto the survivors (M-tasks are moldable: group sizes shrink
//! proportionally; if fewer survivors than groups remain, a layer's groups
//! are merged and their tasks serialised), implementing
//! shrink-and-continue.
//!
//! Deterministic fault injection for tests is available through
//! [`RunOptions::faults`] (see [`FaultPlan`]).

use crate::barrier::EpochBarrier;
use crate::error::{CollectiveAborted, ExecError};
use crate::fault::{FaultKind, FaultPlan};
use crate::program::{GroupPlan, Program, TaskCtx, TaskFn};
use crate::store::{DataStore, Snapshot};
use pt_obs::{keys, Recorder, TraceRecorder};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Chrome-trace process row used for executor events (worker `i` records on
/// thread row `i`; the driver records on row [`Team::size`]).
pub const EXEC_PID: u32 = 1;

/// How often (and how patiently) a failed layer is retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per layer (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before attempt `n + 1`, doubled per retry of the same layer.
    pub base_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }

    /// Up to `n` attempts per layer, no backoff.
    pub fn attempts(n: u32) -> RetryPolicy {
        assert!(n >= 1, "at least one attempt is required");
        RetryPolicy {
            max_attempts: n,
            base_backoff: Duration::ZERO,
        }
    }

    /// Set the base backoff (doubled per retry of the same layer).
    pub fn with_backoff(mut self, base: Duration) -> RetryPolicy {
        self.base_backoff = base;
        self
    }

    /// Backoff after `failed_attempt` (1-based) of a layer.
    fn backoff(&self, failed_attempt: u32) -> Duration {
        self.base_backoff
            .saturating_mul(1u32 << (failed_attempt - 1).min(16))
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// Per-run execution options for [`Team::run_with`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Retry policy (default: no retries).
    pub retry: RetryPolicy,
    /// Scripted faults for testing (default: none).
    pub faults: FaultPlan,
    /// Trace recorder (default: none — instrumentation reduces to a branch).
    ///
    /// Size it with [`TraceRecorder::for_team`] so every worker plus the
    /// driver gets a lane; undersized recorders drop (and count) the excess
    /// instead of failing the run.
    pub recorder: Option<Arc<TraceRecorder>>,
}

impl RunOptions {
    /// Attach a trace recorder.
    pub fn with_recorder(mut self, recorder: Arc<TraceRecorder>) -> RunOptions {
        self.recorder = Some(recorder);
        self
    }
}

enum Msg {
    Run(Arc<RunRequest>),
    Shutdown,
}

struct RunRequest {
    program: Arc<Program>,
    store: Arc<DataStore>,
    shared: Arc<RunShared>,
}

/// First failure of a run attempt (first writer wins).
enum Failure {
    Panic {
        layer: usize,
        group: usize,
        payload: String,
    },
    /// A collective aborted without an attributable task panic (e.g. a
    /// communicator poisoned from outside the runtime).
    Abort {
        layer: usize,
        group: usize,
    },
    Lost {
        layer: usize,
        worker: usize,
    },
}

/// State shared by the workers of one run attempt.
struct RunShared {
    /// Layer barrier for this attempt's roster.
    barrier: EpochBarrier,
    /// Physical worker indices participating, in logical-rank order.
    roster: Vec<usize>,
    /// First layer to execute (later attempts resume mid-program).
    start_layer: usize,
    /// Attempt number for `start_layer` (later layers are attempt 1).
    attempt: u32,
    /// Whether layer snapshots are taken (retries enabled).
    snapshots: bool,
    faults: FaultPlan,
    recorder: Option<Arc<TraceRecorder>>,
    failure: Mutex<Option<Failure>>,
    /// Snapshot taken at the start of the most recent layer.
    snapshot: Mutex<Option<Snapshot>>,
}

struct WorkerReport {
    worker: usize,
    /// The worker left the team permanently (its thread exited).
    lost: bool,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn record_failure(shared: &RunShared, failure: Failure) {
    let mut slot = lock(&shared.failure);
    if slot.is_none() {
        *slot = Some(failure);
    }
}

fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<opaque panic payload>".to_string()
    }
}

/// A persistent team of worker threads.
///
/// Each worker owns a team index; running a [`Program`] hands every worker
/// the full plan — a worker executes the tasks of the group containing its
/// index (SPMD, using the group's communicator) and joins the team-wide
/// barrier at every layer boundary, which implements the paper's
/// layer-by-layer execution with re-distribution visibility through the
/// shared [`DataStore`].  See the module docs for the failure semantics.
pub struct Team {
    size: usize,
    senders: Vec<SyncSender<Msg>>,
    done_rx: Receiver<WorkerReport>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Physical indices of workers still alive, in logical-rank order.
    alive: Mutex<Vec<usize>>,
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team").field("size", &self.size).finish()
    }
}

impl Team {
    /// Spawn a team of `size` workers.
    pub fn new(size: usize) -> Team {
        assert!(size >= 1, "team needs at least one worker");
        let (done_tx, done_rx) = sync_channel(size);
        let mut senders = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for idx in 0..size {
            let (tx, rx) = sync_channel::<Msg>(1);
            senders.push(tx);
            let done = done_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pt-worker-{idx}"))
                    .spawn(move || worker_loop(idx, rx, done))
                    .expect("spawn worker"),
            );
        }
        Team {
            size,
            senders,
            done_rx,
            handles,
            alive: Mutex::new((0..size).collect()),
        }
    }

    /// Number of workers the team was spawned with.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of workers still alive (equals [`size`](Self::size) unless
    /// workers were permanently lost).
    pub fn alive_workers(&self) -> usize {
        lock(&self.alive).len()
    }

    /// Execute a program to completion; returns the wall-clock duration.
    /// Equivalent to [`run_with`](Self::run_with) with default options (no
    /// retries, no fault injection).
    pub fn run(&self, program: &Program, store: &Arc<DataStore>) -> Result<Duration, ExecError> {
        self.run_with(program, store, &RunOptions::default())
    }

    /// Execute a program under explicit [`RunOptions`].
    ///
    /// Recoverable conditions — invalid programs, task panics, aborted
    /// collectives, worker loss — surface as [`ExecError`]s; the team and
    /// the caller's program remain usable afterwards.
    pub fn run_with(
        &self,
        program: &Program,
        store: &Arc<DataStore>,
        opts: &RunOptions,
    ) -> Result<Duration, ExecError> {
        program.validate().map_err(ExecError::InvalidProgram)?;
        let snapshots = opts.retry.max_attempts > 1;
        let mut program = Arc::new(program.clone());
        let mut start_layer = 0usize;
        let mut attempt = 1u32;
        let start = Instant::now();
        // The driver records on its own lane, past the worker lanes.
        let rec = opts.recorder.as_deref();
        let driver = self.size as u32;
        let bytes_before = rec.map(|_| store.bytes_written()).unwrap_or(0);
        loop {
            let attempt_t0 = rec.map_or(0.0, Recorder::now_us);
            let roster = lock(&self.alive).clone();
            if program.required_workers() > roster.len() {
                return Err(ExecError::InvalidProgram(format!(
                    "program needs {} workers, team has {} alive",
                    program.required_workers(),
                    roster.len()
                )));
            }
            let shared = Arc::new(RunShared {
                barrier: EpochBarrier::new(roster.len()),
                roster: roster.clone(),
                start_layer,
                attempt,
                snapshots,
                faults: opts.faults.clone(),
                recorder: opts.recorder.clone(),
                failure: Mutex::new(None),
                snapshot: Mutex::new(None),
            });
            let req = Arc::new(RunRequest {
                program: program.clone(),
                store: store.clone(),
                shared: shared.clone(),
            });
            for &w in &roster {
                self.senders[w]
                    .send(Msg::Run(req.clone()))
                    .expect("worker alive");
            }
            let mut any_lost = false;
            for _ in 0..roster.len() {
                let report = self.done_rx.recv().expect("worker reports completion");
                if report.lost {
                    any_lost = true;
                    lock(&self.alive).retain(|&w| w != report.worker);
                    if let Some(r) = rec {
                        r.add(keys::WORKERS_LOST, 1);
                    }
                }
            }
            if let Some(r) = rec {
                r.span_args(
                    EXEC_PID,
                    driver,
                    "attempt",
                    "exec",
                    attempt_t0,
                    vec![
                        ("start_layer", start_layer.into()),
                        ("attempt", attempt.into()),
                        ("workers", roster.len().into()),
                    ],
                );
            }
            // All workers are out of the run: communicators can be reset so
            // the caller's program (which shares them) stays reusable.
            let failure = lock(&shared.failure).take();
            if failure.is_some() {
                for group in program.layers.iter().flatten() {
                    group.comm.reset();
                }
            }
            let Some(failure) = failure else {
                debug_assert!(!any_lost, "worker loss must record a failure");
                if let Some(r) = rec {
                    r.add(
                        keys::REDIST_BYTES,
                        store.bytes_written().saturating_sub(bytes_before),
                    );
                }
                return Ok(start.elapsed());
            };
            let (layer, err) = match &failure {
                Failure::Panic {
                    layer,
                    group,
                    payload,
                } => (
                    *layer,
                    ExecError::TaskPanicked {
                        layer: *layer,
                        group: *group,
                        payload: payload.clone(),
                    },
                ),
                Failure::Abort { layer, group } => (
                    *layer,
                    ExecError::CollectiveAborted {
                        layer: *layer,
                        group: *group,
                    },
                ),
                Failure::Lost { layer, worker } => (
                    *layer,
                    ExecError::WorkerLost {
                        layer: *layer,
                        worker: *worker,
                    },
                ),
            };
            let cur_attempt = if layer == start_layer { attempt } else { 1 };
            if !snapshots || cur_attempt >= opts.retry.max_attempts {
                return Err(err);
            }
            let Some(snap) = lock(&shared.snapshot).take() else {
                return Err(err);
            };
            if any_lost {
                let survivors = lock(&self.alive).len();
                if survivors == 0 {
                    return Err(err);
                }
                // Shrink-and-continue: remaining layers move onto the
                // survivors (the whole program is re-planned to keep layer
                // indices and `required_workers` consistent; completed
                // layers never re-run).
                program = Arc::new(replan(&program, survivors));
                if let Some(r) = rec {
                    r.instant(
                        EXEC_PID,
                        driver,
                        "replan",
                        "exec",
                        vec![("layer", layer.into()), ("survivors", survivors.into())],
                    );
                }
            }
            store.restore(&snap);
            if let Some(r) = rec {
                r.add(keys::ROLLBACKS, 1);
                r.add(keys::RETRIES, 1);
                r.instant(
                    EXEC_PID,
                    driver,
                    "retry",
                    "exec",
                    vec![
                        ("layer", layer.into()),
                        ("next_attempt", (cur_attempt + 1).into()),
                    ],
                );
            }
            let backoff = opts.retry.backoff(cur_attempt);
            if backoff > Duration::ZERO {
                std::thread::sleep(backoff);
            }
            start_layer = layer;
            attempt = cur_attempt + 1;
        }
    }
}

/// Re-plan a program onto `n` workers: each layer's groups shrink
/// proportionally to their original sizes; if a layer has more groups than
/// workers remain, its groups are merged into one and their tasks run in
/// sequence (M-tasks are moldable, so task bodies adapt via
/// `ctx.rank`/`ctx.size`).
fn replan(program: &Program, n: usize) -> Program {
    assert!(n >= 1, "cannot re-plan onto zero workers");
    let mut p = program.clone();
    for layer in &mut p.layers {
        if layer.is_empty() {
            continue;
        }
        if layer.len() <= n {
            let weights: Vec<f64> = layer.iter().map(|g| g.workers.len() as f64).collect();
            let sizes = crate::dynamic::proportional_sizes(&weights, n);
            let mut lo = 0usize;
            *layer = layer
                .iter()
                .zip(sizes)
                .map(|(g, s)| {
                    let plan = GroupPlan::new(lo..lo + s, g.tasks.clone());
                    lo += s;
                    plan
                })
                .collect();
        } else {
            let tasks: Vec<Arc<TaskFn>> =
                layer.iter().flat_map(|g| g.tasks.iter().cloned()).collect();
            *layer = vec![GroupPlan::new(0..n, tasks)];
        }
    }
    p
}

impl Drop for Team {
    fn drop(&mut self) {
        for tx in &self.senders {
            // Lost workers have exited; sending to them just fails.
            let _ = tx.send(Msg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(idx: usize, rx: Receiver<Msg>, done: SyncSender<WorkerReport>) {
    while let Ok(Msg::Run(req)) = rx.recv() {
        let lost = run_layers(idx, &req);
        let _ = done.send(WorkerReport { worker: idx, lost });
        if lost {
            // Permanent loss: the thread exits and never rejoins the team.
            return;
        }
    }
}

/// One worker's side of a run attempt.  Returns `true` if the worker was
/// (injected as) permanently lost.
fn run_layers(idx: usize, req: &RunRequest) -> bool {
    let sh = &req.shared;
    let rec = sh.recorder.as_deref();
    let tid = idx as u32;
    let me = sh
        .roster
        .iter()
        .position(|&w| w == idx)
        .expect("worker is in the roster");
    for (layer_idx, layer) in req.program.layers.iter().enumerate().skip(sh.start_layer) {
        let attempt = if layer_idx == sh.start_layer {
            sh.attempt
        } else {
            1
        };
        // Logical rank 0 snapshots the store before anyone starts the
        // layer; the entry barrier publishes the snapshot and guarantees no
        // task of this layer has run yet.
        if sh.snapshots && me == 0 {
            let t0 = rec.map_or(0.0, Recorder::now_us);
            *lock(&sh.snapshot) = Some(req.store.snapshot());
            if let Some(r) = rec {
                r.add(keys::SNAPSHOTS, 1);
                r.span_args(
                    EXEC_PID,
                    tid,
                    "snapshot",
                    "store",
                    t0,
                    vec![("layer", layer_idx.into())],
                );
            }
        }
        let bar_t0 = rec.map_or(0.0, Recorder::now_us);
        if sh.barrier.wait().is_err() {
            return false;
        }
        record_barrier(rec, tid, layer_idx, "barrier:enter", bar_t0);
        let mut inject_panic = false;
        for kind in sh.faults.firing(layer_idx, me, attempt) {
            if let Some(r) = rec {
                r.add(keys::FAULTS_INJECTED, 1);
                r.instant(
                    EXEC_PID,
                    tid,
                    match kind {
                        FaultKind::Delay(_) => "fault:delay",
                        FaultKind::Panic => "fault:panic",
                        FaultKind::Lose => "fault:lose",
                    },
                    "fault",
                    vec![("layer", layer_idx.into()), ("attempt", attempt.into())],
                );
            }
            match kind {
                FaultKind::Delay(d) => std::thread::sleep(*d),
                FaultKind::Panic => inject_panic = true,
                FaultKind::Lose => {
                    // Record first, then poison, then shrink the barrier:
                    // peers that unwind or arrive afterwards must observe
                    // the failure.
                    record_failure(
                        sh,
                        Failure::Lost {
                            layer: layer_idx,
                            worker: idx,
                        },
                    );
                    if let Some((gi, _)) = Program::find_role(layer, me) {
                        layer[gi].comm.poison();
                    }
                    sh.barrier.leave();
                    return true;
                }
            }
        }
        if let Some((gi, rank)) = Program::find_role(layer, me) {
            let group = &layer[gi];
            let ctx = TaskCtx {
                rank,
                size: group.workers.len(),
                comm: &group.comm,
                store: &req.store,
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if inject_panic {
                    // resume_unwind skips the panic hook: injected faults
                    // are expected control flow, not bug reports.
                    std::panic::resume_unwind(Box::new(format!(
                        "injected panic (layer {layer_idx}, rank {me}, attempt {attempt})"
                    )));
                }
                for (k, task) in group.tasks.iter().enumerate() {
                    let t0 = rec.map_or(0.0, Recorder::now_us);
                    task(&ctx);
                    if let Some(r) = rec {
                        let dur_s = (r.now_us() - t0) / 1e6;
                        r.add(keys::TASKS_RUN, 1);
                        r.observe(keys::TASK_SECONDS, dur_s);
                        r.span_args(
                            EXEC_PID,
                            tid,
                            &format!("L{layer_idx}.g{gi}.t{k}"),
                            "task",
                            t0,
                            vec![
                                ("layer", layer_idx.into()),
                                ("group", gi.into()),
                                ("task_index", k.into()),
                                ("attempt", attempt.into()),
                                ("rank", rank.into()),
                            ],
                        );
                    }
                }
            }));
            if let Err(payload) = result {
                if payload.downcast_ref::<CollectiveAborted>().is_some() {
                    // Victim of a peer failure.  The culprit records before
                    // poisoning, so this only sticks when the communicator
                    // was poisoned from outside the runtime.
                    record_failure(
                        sh,
                        Failure::Abort {
                            layer: layer_idx,
                            group: gi,
                        },
                    );
                    if let Some(r) = rec {
                        r.add(keys::COLLECTIVE_ABORTS, 1);
                        r.instant(
                            EXEC_PID,
                            tid,
                            "collective_abort",
                            "fault",
                            vec![("layer", layer_idx.into()), ("group", gi.into())],
                        );
                    }
                } else {
                    record_failure(
                        sh,
                        Failure::Panic {
                            layer: layer_idx,
                            group: gi,
                            payload: payload_text(payload.as_ref()),
                        },
                    );
                    // Unblock group peers waiting in a collective for us.
                    group.comm.poison();
                    if let Some(r) = rec {
                        r.instant(
                            EXEC_PID,
                            tid,
                            "panic",
                            "fault",
                            vec![("layer", layer_idx.into()), ("group", gi.into())],
                        );
                    }
                }
            }
        }
        // Layer barrier: re-distributions (DataStore writes) become visible
        // to every group before the next layer starts — and every worker
        // observes a failure of this layer at the same point.
        let bar_t0 = rec.map_or(0.0, Recorder::now_us);
        if sh.barrier.wait().is_err() {
            return false;
        }
        record_barrier(rec, tid, layer_idx, "barrier:exit", bar_t0);
        if lock(&sh.failure).is_some() {
            return false;
        }
    }
    false
}

/// Record one barrier wait as a span plus a histogram observation.
fn record_barrier(
    rec: Option<&TraceRecorder>,
    tid: u32,
    layer: usize,
    name: &'static str,
    start_us: f64,
) {
    if let Some(r) = rec {
        let wait_s = (r.now_us() - start_us) / 1e6;
        r.observe(keys::BARRIER_WAIT, wait_s);
        r.span_args(
            EXEC_PID,
            tid,
            name,
            "barrier",
            start_us,
            vec![("layer", layer.into())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{GroupPlan, TaskCtx, TaskFn};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn two_groups_run_concurrently_and_join_layers() {
        let team = Team::new(4);
        let store = DataStore::new();
        store.put("sum0", vec![0.0]);
        store.put("sum1", vec![0.0]);
        // Layer 1: each group of 2 allreduces its ranks and publishes.
        let make = |name: &'static str| -> Arc<TaskFn> {
            Arc::new(move |ctx: &TaskCtx| {
                let mut v = vec![ctx.rank as f64 + 1.0];
                ctx.comm.allreduce_sum(ctx.rank, &mut v);
                if ctx.rank == 0 {
                    ctx.store.put(name, v);
                }
            })
        };
        // Layer 2: one group of 4 adds both sums.
        let combine: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            if ctx.rank == 0 {
                let a = ctx.store.get("sum0").unwrap()[0];
                let b = ctx.store.get("sum1").unwrap()[0];
                ctx.store.put("total", vec![a + b]);
            }
        });
        let mut program = Program::single_layer(vec![
            GroupPlan::new(0..2, vec![make("sum0")]),
            GroupPlan::new(2..4, vec![make("sum1")]),
        ]);
        program.push_layer(vec![GroupPlan::new(0..4, vec![combine])]);
        team.run(&program, &store).unwrap();
        assert_eq!(store.get("total").unwrap(), vec![6.0]); // (1+2) + (1+2)
    }

    #[test]
    fn all_workers_participate() {
        let team = Team::new(8);
        let store = DataStore::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let task: Arc<TaskFn> = Arc::new(move |_ctx: &TaskCtx| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..8, vec![task])]);
        team.run(&program, &store).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn sequential_tasks_within_group_are_ordered() {
        let team = Team::new(2);
        let store = DataStore::new();
        store.put("log", vec![]);
        let t1: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            ctx.comm.barrier();
            if ctx.rank == 0 {
                ctx.store.put("log", vec![1.0]);
            }
            ctx.comm.barrier();
        });
        let t2: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            ctx.comm.barrier();
            if ctx.rank == 0 {
                let mut l = ctx.store.get("log").unwrap();
                l.push(2.0);
                ctx.store.put("log", l);
            }
            ctx.comm.barrier();
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![t1, t2])]);
        team.run(&program, &store).unwrap();
        assert_eq!(store.get("log").unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn team_is_reusable_across_runs() {
        let team = Team::new(3);
        let store = DataStore::new();
        for round in 0..5 {
            let task: Arc<TaskFn> = Arc::new(move |ctx: &TaskCtx| {
                if ctx.rank == 0 {
                    ctx.store.put("round", vec![round as f64]);
                }
            });
            let program = Program::single_layer(vec![GroupPlan::new(0..3, vec![task])]);
            team.run(&program, &store).unwrap();
            assert_eq!(store.get("round").unwrap(), vec![round as f64]);
        }
    }

    #[test]
    fn idle_workers_do_not_block_layers() {
        // Program uses only 2 of 4 workers; the others still hit the layer
        // barrier and the run completes.
        let team = Team::new(4);
        let store = DataStore::new();
        let task: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            let mut v = vec![1.0];
            ctx.comm.allreduce_sum(ctx.rank, &mut v);
            if ctx.rank == 0 {
                ctx.store.put("n", v);
            }
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![task])]);
        team.run(&program, &store).unwrap();
        assert_eq!(store.get("n").unwrap(), vec![2.0]);
    }

    #[test]
    fn oversized_program_rejected_as_error() {
        let team = Team::new(2);
        let store = DataStore::new();
        let t: Vec<Arc<TaskFn>> = vec![];
        let program = Program::single_layer(vec![GroupPlan::new(0..4, t)]);
        match team.run(&program, &store) {
            Err(ExecError::InvalidProgram(msg)) => {
                assert!(msg.contains("program needs"), "got: {msg}")
            }
            other => panic!("expected InvalidProgram, got {other:?}"),
        }
        // The rejection left the team fully usable.
        let ok = Program::single_layer(vec![GroupPlan::new(0..2, vec![])]);
        team.run(&ok, &store).unwrap();
    }

    #[test]
    fn overlapping_groups_rejected_as_error() {
        let team = Team::new(4);
        let store = DataStore::new();
        let t: Vec<Arc<TaskFn>> = vec![];
        let program = Program::single_layer(vec![
            GroupPlan::new(0..2, t.clone()),
            GroupPlan::new(1..3, t),
        ]);
        assert!(matches!(
            team.run(&program, &store),
            Err(ExecError::InvalidProgram(_))
        ));
    }

    #[test]
    fn replan_shrinks_groups_proportionally() {
        let t: Vec<Arc<TaskFn>> = vec![];
        let mut program = Program::single_layer(vec![
            GroupPlan::new(0..4, t.clone()),
            GroupPlan::new(4..8, t.clone()),
        ]);
        program.push_layer(vec![GroupPlan::new(0..8, t.clone())]);
        let shrunk = replan(&program, 6);
        assert_eq!(shrunk.required_workers(), 6);
        let sizes: Vec<usize> = shrunk.layers[0].iter().map(|g| g.workers.len()).collect();
        assert_eq!(sizes, vec![3, 3]);
        assert!(shrunk.validate().is_ok());
    }

    #[test]
    fn replan_merges_when_fewer_workers_than_groups() {
        let t: Vec<Arc<TaskFn>> = vec![Arc::new(|_: &TaskCtx| {})];
        let program = Program::single_layer(vec![
            GroupPlan::new(0..1, t.clone()),
            GroupPlan::new(1..2, t.clone()),
            GroupPlan::new(2..3, t.clone()),
        ]);
        let shrunk = replan(&program, 2);
        assert_eq!(shrunk.layers[0].len(), 1);
        assert_eq!(shrunk.layers[0][0].workers, 0..2);
        // Tasks of all three groups now run in sequence on the merged group.
        assert_eq!(shrunk.layers[0][0].tasks.len(), 3);
    }
}
