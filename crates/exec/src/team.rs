//! The worker-thread team executing M-task programs, with fault tolerance.
//!
//! # Failure semantics
//!
//! Running a [`Program`] returns `Result<Duration, ExecError>`.  A panic in
//! a task body no longer brings the run down by unwinding into the caller
//! (and no longer risks wedging peers inside a group collective, the old
//! caveat): the failing worker records the failure, its group communicator
//! is poisoned so peers blocked in a collective unwind with a
//! [`CollectiveAborted`] sentinel, every worker re-joins the team barrier
//! at the layer boundary, and the run reports a typed
//! [`ExecError::TaskPanicked`] in bounded time.  The team and the caller's
//! program remain usable for subsequent runs.
//!
//! # Layer-granular recovery
//!
//! With a [`RetryPolicy`] of more than one attempt
//! ([`Team::run_with`]), the team snapshots the [`DataStore`] at each layer
//! boundary, rolls it back when a layer fails, and re-executes from the
//! failed layer — later layers never re-run, earlier layers are never
//! repeated.  On *permanent* worker loss the remaining layers are re-planned
//! onto the survivors (M-tasks are moldable: group sizes shrink
//! proportionally; if fewer survivors than groups remain, a layer's groups
//! are merged and their tasks serialised), implementing
//! shrink-and-continue.
//!
//! # Fail-slow tolerance
//!
//! Fail-stop recovery alone cannot save a run from a worker that is merely
//! *slow* (or silently stuck): nothing crashes, the layer barrier just
//! never completes.  Attaching a [`DeadlinePolicy`]
//! ([`RunOptions::deadline`]) spawns a monitor thread per attempt that
//! watches a [`HeartbeatBoard`] of per-rank progress stamps:
//!
//! * a layer exceeding its prediction-derived deadline flags its laggards;
//! * a laggard with *fresh* heartbeats is a **straggler** — under
//!   [`MissAction::Hedge`] a speculative duplicate of its group's layer
//!   slice is raced against it on a private [`DataStore`] overlay (first
//!   finisher wins, the loser is cancelled through the existing
//!   communicator-poison path, the winning overlay is committed at the
//!   layer boundary);
//! * a laggard silent for longer than
//!   [`dead_after`](DeadlinePolicy::dead_after) is **dead** — it is demoted
//!   to a permanent loss, reusing the shrink-and-continue path;
//! * independently, [`global_timeout`](DeadlinePolicy::global_timeout) is
//!   the wedge-breaker of last resort: every rank still running is demoted
//!   and the run surfaces [`ExecError::WatchdogTimeout`].
//!
//! Hedging assumes task bodies are deterministic and idempotent at layer
//! granularity (the repo-wide M-task contract): the winning copy's writes
//! are bit-identical to what the straggler would have produced.  All of
//! this machinery is strictly pay-for-what-you-use: with no deadline
//! policy no monitor is spawned, no board is allocated, and the per-task
//! overhead is one `Option` branch (asserted by the bench gates via
//! [`Team::monitors_spawned`]).
//!
//! Deterministic fault injection for tests is available through
//! [`RunOptions::faults`] (see [`FaultPlan`]); [`FaultPlan::chaos`]
//! generates randomized campaigns for the `chaos_run` harness.

use crate::barrier::EpochBarrier;
use crate::comm::GroupComm;
use crate::deadline::{DeadlinePolicy, MissAction};
use crate::error::{CollectiveAborted, ExecError};
use crate::fault::{FaultKind, FaultPlan};
use crate::heartbeat::{HeartbeatBoard, LaneState};
use crate::program::{GroupPlan, Program, TaskCtx, TaskFn};
use crate::store::{DataStore, Snapshot};
use pt_obs::{keys, Recorder, TraceRecorder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Chrome-trace process row used for executor events (worker `i` records on
/// thread row `i`; the driver and monitor record on row [`Team::size`]).
pub const EXEC_PID: u32 = 1;

/// How often (and how patiently) a failed layer is retried.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per layer (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before attempt `n + 1`, doubled per retry of the same layer.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep (the exponential curve
    /// saturates here instead of growing unboundedly).
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a factor
    /// drawn uniformly from `[1 − jitter, 1]`.  Draws are deterministic in
    /// ([`seed`](Self::seed), attempt), so the same policy replays the same
    /// backoff sequence — testable chaos, no wall-clock entropy.
    pub jitter: f64,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::from_secs(10),
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Up to `n` attempts per layer, no backoff.
    pub fn attempts(n: u32) -> RetryPolicy {
        assert!(n >= 1, "at least one attempt is required");
        RetryPolicy {
            max_attempts: n,
            ..RetryPolicy::none()
        }
    }

    /// Set the base backoff (doubled per retry of the same layer).
    pub fn with_backoff(mut self, base: Duration) -> RetryPolicy {
        self.base_backoff = base;
        self
    }

    /// Set the backoff ceiling.
    pub fn with_max_backoff(mut self, max: Duration) -> RetryPolicy {
        self.max_backoff = max;
        self
    }

    /// Enable seeded jitter: backoffs are scaled by a deterministic draw
    /// from `[1 − frac, 1]` (see [`jitter`](Self::jitter)).
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> RetryPolicy {
        self.jitter = frac.clamp(0.0, 1.0);
        self.seed = seed;
        self
    }

    /// Backoff after `failed_attempt` (1-based) of a layer: exponential in
    /// the attempt, saturating at [`max_backoff`](Self::max_backoff), then
    /// jittered deterministically.
    pub fn backoff(&self, failed_attempt: u32) -> Duration {
        assert!(failed_attempt >= 1, "attempts are 1-based");
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (failed_attempt - 1).min(16));
        let capped = exp.min(self.max_backoff);
        if self.jitter <= 0.0 || capped.is_zero() {
            return capped;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed ^ (failed_attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let u: f64 = rng.gen_range(0.0..1.0);
        capped.mul_f64(1.0 - self.jitter * u)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// Per-run execution options for [`Team::run_with`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Retry policy (default: no retries).
    pub retry: RetryPolicy,
    /// Scripted faults for testing (default: none).
    pub faults: FaultPlan,
    /// Trace recorder (default: none — instrumentation reduces to a branch).
    ///
    /// Size it with [`TraceRecorder::for_team`] so every worker plus the
    /// driver gets a lane; undersized recorders drop (and count) the excess
    /// instead of failing the run.
    pub recorder: Option<Arc<TraceRecorder>>,
    /// Fail-slow detection and recovery (default: none — no monitor thread,
    /// no heartbeats; see the module docs).
    pub deadline: Option<DeadlinePolicy>,
    /// Malleable resize channel (default: none — resizes reduce to one
    /// `Option` branch per layer; see [`ResizeHandle`]).
    pub resize: Option<ResizeHandle>,
}

impl RunOptions {
    /// Attach a trace recorder.
    pub fn with_recorder(mut self, recorder: Arc<TraceRecorder>) -> RunOptions {
        self.recorder = Some(recorder);
        self
    }

    /// Attach a fail-slow deadline policy.
    pub fn with_deadline(mut self, policy: DeadlinePolicy) -> RunOptions {
        self.deadline = Some(policy);
        self
    }

    /// Attach a malleable resize channel.
    pub fn with_resize(mut self, handle: ResizeHandle) -> RunOptions {
        self.resize = Some(handle);
        self
    }
}

/// A clonable channel through which an external controller — a
/// multi-tenant scheduler, a monitor thread, a test — asks a running
/// program to malleably change its width.
///
/// Requests take effect at layer **entry** boundaries: logical rank 0
/// decides a pending request before the entry barrier, the barrier
/// publishes the verdict to every rank, the attempt stops at the boundary,
/// and the driver re-plans the not-yet-run layers onto the new width
/// (shrink *and* regrow — M-tasks are moldable) before resuming at the
/// same layer.  Nothing rolls back: no task of the boundary layer has run
/// yet, so the store is exactly the committed state of the previous layer.
///
/// [`request`](Self::request) is asynchronous (applied at the next
/// boundary, latest wins); [`request_at`](Self::request_at) is scripted
/// (applied exactly at one layer's entry — deterministic replay for
/// tests).  Widths are clamped to `1..=alive workers`; a request matching
/// the current width is a no-op.  A request consumed by an attempt that
/// *fails* concurrently (e.g. the watchdog fires at the same boundary) is
/// dropped — the failure wins; asynchronous requests can simply be
/// re-issued.
#[derive(Clone, Debug, Default)]
pub struct ResizeHandle {
    inner: Arc<ResizeInner>,
}

#[derive(Debug, Default)]
struct ResizeInner {
    /// Latest asynchronous target width (0 = none pending).
    target: AtomicUsize,
    /// Scripted `(layer, width)` requests, applied at that layer's entry.
    scripted: Mutex<Vec<(usize, usize)>>,
    /// Resizes applied by runs carrying this handle.
    applied: AtomicU64,
}

impl ResizeHandle {
    /// A fresh channel with no pending requests.
    pub fn new() -> ResizeHandle {
        ResizeHandle::default()
    }

    /// Request a resize to `width` at the next layer boundary.  Overwrites
    /// any not-yet-applied asynchronous request (latest wins).
    pub fn request(&self, width: usize) {
        assert!(width >= 1, "cannot resize to zero workers");
        self.inner.target.store(width, Ordering::Release);
    }

    /// Script a resize to `width` at the entry boundary of `layer`
    /// (0-based).  Scripted requests win over asynchronous ones at their
    /// layer; several for one layer apply last-wins.
    pub fn request_at(&self, layer: usize, width: usize) {
        assert!(width >= 1, "cannot resize to zero workers");
        lock(&self.inner.scripted).push((layer, width));
    }

    /// Resizes actually applied by runs carrying this handle.
    pub fn applied(&self) -> u64 {
        self.inner.applied.load(Ordering::Relaxed)
    }

    /// Whether any request is still pending.
    pub fn pending(&self) -> bool {
        self.inner.target.load(Ordering::Acquire) != 0 || !lock(&self.inner.scripted).is_empty()
    }

    /// Decide the request (if any) for the entry of `layer`: drain scripted
    /// entries for the layer (last wins), else take the asynchronous
    /// target; clamp to `1..=roster` and drop no-ops against `current`.
    fn take(&self, layer: usize, roster: usize, current: usize) -> Option<usize> {
        let mut target = None;
        {
            let mut scripted = lock(&self.inner.scripted);
            scripted.retain(|&(l, w)| {
                if l == layer {
                    target = Some(w);
                    false
                } else {
                    true
                }
            });
        }
        if target.is_none() {
            match self.inner.target.swap(0, Ordering::AcqRel) {
                0 => {}
                t => target = Some(t),
            }
        }
        let t = target?.clamp(1, roster);
        (t != current).then_some(t)
    }
}

enum Msg {
    Run(Arc<RunRequest>),
    Shutdown,
}

struct RunRequest {
    program: Arc<Program>,
    store: Arc<DataStore>,
    shared: Arc<RunShared>,
}

/// First failure of a run attempt (first writer wins).
enum Failure {
    Panic {
        layer: usize,
        group: usize,
        payload: String,
    },
    /// A collective aborted without an attributable task panic (e.g. a
    /// communicator poisoned from outside the runtime).
    Abort {
        layer: usize,
        group: usize,
    },
    Lost {
        layer: usize,
        worker: usize,
    },
    /// The global watchdog fired on a wedged attempt.
    Watchdog {
        layer: usize,
        stalled: Vec<usize>,
    },
}

/// Outcome flags of one hedge, shared between its threads, the monitor and
/// the committing worker.
struct HedgeOutcome {
    /// Hedge threads still running.
    remaining: AtomicUsize,
    /// Some hedge thread panicked or was cancelled.
    failed: AtomicBool,
    /// The hedge finished first and its overlay must be committed.
    won: AtomicBool,
    /// All hedge threads have exited (joining is non-blocking).
    done: AtomicBool,
}

/// One speculative duplicate of a group's layer slice.
struct Hedge {
    layer: usize,
    group: usize,
    /// Cooperative cancellation flag checked between tasks.
    cancel: Arc<AtomicBool>,
    /// The hedge's private communicator (poisoned on cancellation so
    /// threads blocked in a collective unwind).
    comm: Arc<GroupComm>,
    outcome: Arc<HedgeOutcome>,
    /// Private store the hedge executes against.
    overlay: Arc<DataStore>,
    /// Layer-entry snapshot the overlay was seeded from (commit = diff).
    base: Snapshot,
    handles: Vec<std::thread::JoinHandle<()>>,
}

#[derive(Default)]
struct HedgeState {
    hedges: Vec<Hedge>,
    /// `(layer, group)` pairs that already have a hedge this attempt.
    spawned: HashSet<(usize, usize)>,
    /// Layers already committed — no new hedges may target them.
    closed: HashSet<usize>,
    /// Hedges spawned this attempt (capped by the policy).
    count: u32,
    /// The attempt is over; `finalize_hedges` owns all cleanup now.
    finished: bool,
}

/// Fail-slow state of one run attempt (present iff a [`DeadlinePolicy`] is
/// attached): the heartbeat board, hedge bookkeeping, and the primary
/// progress counters the hedge win condition reads.
struct FailSlowShared {
    board: HeartbeatBoard,
    policy: DeadlinePolicy,
    /// `primary_done[layer][group]`: primary ranks of the group that
    /// completed the layer's task slice.
    primary_done: Vec<Vec<AtomicUsize>>,
    /// `hedge_won[layer][group]`: a hedge won the slice; primaries still in
    /// it cancel at their next check.
    hedge_won: Vec<Vec<AtomicBool>>,
    hedge_state: Mutex<HedgeState>,
    /// Set by the driver once all workers reported; stops the monitor.
    monitor_done: AtomicBool,
}

impl FailSlowShared {
    fn new(policy: DeadlinePolicy, program: &Program, ranks: usize) -> FailSlowShared {
        let primary_done = program
            .layers
            .iter()
            .map(|l| l.iter().map(|_| AtomicUsize::new(0)).collect())
            .collect();
        let hedge_won = program
            .layers
            .iter()
            .map(|l| l.iter().map(|_| AtomicBool::new(false)).collect())
            .collect();
        FailSlowShared {
            board: HeartbeatBoard::new(ranks, program.layers.len()),
            policy,
            primary_done,
            hedge_won,
            hedge_state: Mutex::new(HedgeState::default()),
            monitor_done: AtomicBool::new(false),
        }
    }

    fn hedge_has_won(&self, layer: usize, group: usize) -> bool {
        self.hedge_won[layer][group].load(Ordering::Acquire)
    }
}

/// State shared by the workers of one run attempt.
struct RunShared {
    /// Layer barrier for this attempt's roster.
    barrier: EpochBarrier,
    /// Physical worker indices participating, in logical-rank order.
    roster: Vec<usize>,
    /// First layer to execute (later attempts resume mid-program).
    start_layer: usize,
    /// Attempt number for `start_layer` (later layers are attempt 1).
    attempt: u32,
    /// Whether layer snapshots are taken (retries or deadlines enabled).
    snapshots: bool,
    /// Attempt sequence number, for de-duplicating worker reports (a
    /// demoted worker's own late report arrives after the monitor's proxy
    /// report for it).
    seq: u64,
    faults: FaultPlan,
    recorder: Option<Arc<TraceRecorder>>,
    failure: Mutex<Option<Failure>>,
    /// Snapshot taken at the start of the most recent layer.
    snapshot: Mutex<Option<Snapshot>>,
    /// Fail-slow machinery (present iff the run carries a deadline policy).
    fail_slow: Option<Arc<FailSlowShared>>,
    /// Malleable resize channel (present iff the run carries one).
    resize: Option<ResizeHandle>,
    /// `(boundary layer, new width)` decided by rank 0 at a layer entry;
    /// the attempt stops there and the driver re-plans and resumes.
    resize_decision: Mutex<Option<(usize, usize)>>,
}

struct WorkerReport {
    worker: usize,
    /// The worker left the team permanently (its thread exited).
    lost: bool,
    /// Attempt the report belongs to (see [`RunShared::seq`]).
    seq: u64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn record_failure(shared: &RunShared, failure: Failure) {
    let mut slot = lock(&shared.failure);
    if slot.is_none() {
        *slot = Some(failure);
    }
}

fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<opaque panic payload>".to_string()
    }
}

/// A persistent team of worker threads.
///
/// Each worker owns a team index; running a [`Program`] hands every worker
/// the full plan — a worker executes the tasks of the group containing its
/// index (SPMD, using the group's communicator) and joins the team-wide
/// barrier at every layer boundary, which implements the paper's
/// layer-by-layer execution with re-distribution visibility through the
/// shared [`DataStore`].  See the module docs for the failure semantics.
pub struct Team {
    size: usize,
    senders: Vec<SyncSender<Msg>>,
    done_tx: Sender<WorkerReport>,
    done_rx: Receiver<WorkerReport>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Physical indices of workers still alive, in logical-rank order.
    alive: Mutex<Vec<usize>>,
    /// Attempt sequence counter (see [`RunShared::seq`]).
    seq: AtomicU64,
    /// Monitor threads spawned over the team's lifetime.
    monitors: AtomicU64,
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team").field("size", &self.size).finish()
    }
}

impl Team {
    /// Spawn a team of `size` workers.
    pub fn new(size: usize) -> Team {
        assert!(size >= 1, "team needs at least one worker");
        // Unbounded: the monitor may proxy-report a demoted worker whose own
        // (duplicate) report arrives arbitrarily late — neither send may
        // block.
        let (done_tx, done_rx) = channel();
        let mut senders = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for idx in 0..size {
            let (tx, rx) = sync_channel::<Msg>(1);
            senders.push(tx);
            let done = done_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pt-worker-{idx}"))
                    .spawn(move || worker_loop(idx, rx, done))
                    .expect("spawn worker"),
            );
        }
        Team {
            size,
            senders,
            done_tx,
            done_rx,
            handles,
            alive: Mutex::new((0..size).collect()),
            seq: AtomicU64::new(0),
            monitors: AtomicU64::new(0),
        }
    }

    /// Number of workers the team was spawned with.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of workers still alive (equals [`size`](Self::size) unless
    /// workers were permanently lost).
    pub fn alive_workers(&self) -> usize {
        lock(&self.alive).len()
    }

    /// Monitor threads spawned over the team's lifetime — stays zero unless
    /// a run carries a [`DeadlinePolicy`].  The benchmark gates assert this
    /// to pin down that the fail-slow path is zero-cost when disabled.
    pub fn monitors_spawned(&self) -> u64 {
        self.monitors.load(Ordering::Relaxed)
    }

    /// Execute a program to completion; returns the wall-clock duration.
    /// Equivalent to [`run_with`](Self::run_with) with default options (no
    /// retries, no fault injection).
    pub fn run(&self, program: &Program, store: &Arc<DataStore>) -> Result<Duration, ExecError> {
        self.run_with(program, store, &RunOptions::default())
    }

    /// Execute a program under explicit [`RunOptions`].
    ///
    /// Recoverable conditions — invalid programs, task panics, aborted
    /// collectives, worker loss, watchdog timeouts — surface as
    /// [`ExecError`]s; the team and the caller's program remain usable
    /// afterwards.
    pub fn run_with(
        &self,
        program: &Program,
        store: &Arc<DataStore>,
        opts: &RunOptions,
    ) -> Result<Duration, ExecError> {
        program.validate().map_err(ExecError::InvalidProgram)?;
        let snapshots = opts.retry.max_attempts > 1 || opts.deadline.is_some();
        let mut program = Arc::new(program.clone());
        // Resizes re-plan from the caller's original program, so repeated
        // shrink/regrow cycles never compound replanning rounding.
        let base_program = program.clone();
        let mut start_layer = 0usize;
        let mut attempt = 1u32;
        let start = Instant::now();
        // The driver records on its own lane, past the worker lanes.
        let rec = opts.recorder.as_deref();
        let driver = self.size as u32;
        let bytes_before = rec.map(|_| store.bytes_written()).unwrap_or(0);
        loop {
            let attempt_t0 = rec.map_or(0.0, Recorder::now_us);
            let roster = lock(&self.alive).clone();
            if program.required_workers() > roster.len() {
                return Err(ExecError::InvalidProgram(format!(
                    "program needs {} workers, team has {} alive",
                    program.required_workers(),
                    roster.len()
                )));
            }
            let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
            let fail_slow = opts
                .deadline
                .as_ref()
                .map(|p| Arc::new(FailSlowShared::new(p.clone(), &program, roster.len())));
            let shared = Arc::new(RunShared {
                barrier: EpochBarrier::new(roster.len()),
                roster: roster.clone(),
                start_layer,
                attempt,
                snapshots,
                seq,
                faults: opts.faults.clone(),
                recorder: opts.recorder.clone(),
                failure: Mutex::new(None),
                snapshot: Mutex::new(None),
                fail_slow,
                resize: opts.resize.clone(),
                resize_decision: Mutex::new(None),
            });
            let req = Arc::new(RunRequest {
                program: program.clone(),
                store: store.clone(),
                shared: shared.clone(),
            });
            for &w in &roster {
                self.senders[w]
                    .send(Msg::Run(req.clone()))
                    .expect("worker alive");
            }
            let monitor = shared.fail_slow.is_some().then(|| {
                self.monitors.fetch_add(1, Ordering::Relaxed);
                let req = req.clone();
                let done = self.done_tx.clone();
                std::thread::Builder::new()
                    .name("pt-monitor".into())
                    .spawn(move || monitor_loop(req, done, driver))
                    .expect("spawn monitor")
            });
            let mut any_lost = false;
            let mut reported: HashSet<usize> = HashSet::new();
            while reported.len() < roster.len() {
                let report = self.done_rx.recv().expect("worker reports completion");
                // Stale (previous attempt) or duplicate (monitor proxied a
                // demotion and the worker later reported itself) — skip.
                if report.seq != seq || !reported.insert(report.worker) {
                    continue;
                }
                if report.lost {
                    any_lost = true;
                    lock(&self.alive).retain(|&w| w != report.worker);
                    if let Some(r) = rec {
                        r.add(keys::WORKERS_LOST, 1);
                    }
                }
            }
            if let Some(fs) = &shared.fail_slow {
                fs.monitor_done.store(true, Ordering::Release);
            }
            if let Some(h) = monitor {
                let _ = h.join();
            }
            // Hedge threads must be gone before communicators are reset.
            finalize_hedges(&shared, rec, driver);
            if let Some(r) = rec {
                r.span_args(
                    EXEC_PID,
                    driver,
                    "attempt",
                    "exec",
                    attempt_t0,
                    vec![
                        ("start_layer", start_layer.into()),
                        ("attempt", attempt.into()),
                        ("workers", roster.len().into()),
                    ],
                );
            }
            // All workers are out of the run: communicators can be reset so
            // the caller's program (which shares them) stays reusable.
            let failure = lock(&shared.failure).take();
            if failure.is_some() {
                for group in program.layers.iter().flatten() {
                    group.comm.reset();
                }
            }
            let Some(failure) = failure else {
                debug_assert!(!any_lost, "worker loss must record a failure");
                if let Some((layer, width)) = lock(&shared.resize_decision).take() {
                    // Malleable resize: the attempt stopped at the entry of
                    // `layer` with nothing of it run, so the store needs no
                    // rollback — re-plan the remaining layers onto the new
                    // width and resume at the boundary.
                    program = Arc::new(replan(&base_program, width));
                    if let Some(h) = &opts.resize {
                        h.inner.applied.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(r) = rec {
                        r.add(keys::RESIZES, 1);
                        r.instant(
                            EXEC_PID,
                            driver,
                            "resize",
                            "exec",
                            vec![("layer", layer.into()), ("width", width.into())],
                        );
                    }
                    start_layer = layer;
                    attempt = 1;
                    continue;
                }
                if let Some(r) = rec {
                    r.add(
                        keys::REDIST_BYTES,
                        store.bytes_written().saturating_sub(bytes_before),
                    );
                }
                return Ok(start.elapsed());
            };
            let (layer, err) = match &failure {
                Failure::Panic {
                    layer,
                    group,
                    payload,
                } => (
                    *layer,
                    ExecError::TaskPanicked {
                        layer: *layer,
                        group: *group,
                        payload: payload.clone(),
                    },
                ),
                Failure::Abort { layer, group } => (
                    *layer,
                    ExecError::CollectiveAborted {
                        layer: *layer,
                        group: *group,
                    },
                ),
                Failure::Lost { layer, worker } => (
                    *layer,
                    ExecError::WorkerLost {
                        layer: *layer,
                        worker: *worker,
                    },
                ),
                Failure::Watchdog { layer, stalled } => (
                    *layer,
                    ExecError::WatchdogTimeout {
                        layer: *layer,
                        stalled: stalled.clone(),
                    },
                ),
            };
            let cur_attempt = if layer == start_layer { attempt } else { 1 };
            if !snapshots || cur_attempt >= opts.retry.max_attempts {
                return Err(err);
            }
            let Some(snap) = lock(&shared.snapshot).take() else {
                return Err(err);
            };
            if any_lost {
                let survivors = lock(&self.alive).len();
                if survivors == 0 {
                    return Err(err);
                }
                // Shrink-and-continue: remaining layers move onto the
                // survivors (the whole program is re-planned to keep layer
                // indices and `required_workers` consistent; completed
                // layers never re-run).
                program = Arc::new(replan(&program, survivors));
                if let Some(r) = rec {
                    r.instant(
                        EXEC_PID,
                        driver,
                        "replan",
                        "exec",
                        vec![("layer", layer.into()), ("survivors", survivors.into())],
                    );
                }
            }
            store.restore(&snap);
            if let Some(r) = rec {
                r.add(keys::ROLLBACKS, 1);
                r.add(keys::RETRIES, 1);
                r.instant(
                    EXEC_PID,
                    driver,
                    "retry",
                    "exec",
                    vec![
                        ("layer", layer.into()),
                        ("next_attempt", (cur_attempt + 1).into()),
                    ],
                );
            }
            let backoff = opts.retry.backoff(cur_attempt);
            if backoff > Duration::ZERO {
                std::thread::sleep(backoff);
            }
            start_layer = layer;
            attempt = cur_attempt + 1;
        }
    }
}

/// Cancel, join and account every hedge still alive at the end of an
/// attempt (normally only on failure paths — successful attempts commit or
/// discard their hedges at each layer boundary).
fn finalize_hedges(shared: &RunShared, rec: Option<&TraceRecorder>, driver: u32) {
    let Some(fs) = &shared.fail_slow else { return };
    let hedges = {
        let mut st = lock(&fs.hedge_state);
        st.finished = true;
        std::mem::take(&mut st.hedges)
    };
    for mut h in hedges {
        if !h.outcome.done.load(Ordering::Acquire) {
            h.cancel.store(true, Ordering::Relaxed);
            // Unblock hedge threads waiting in a collective.
            h.comm.poison();
        }
        for handle in h.handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(r) = rec {
            r.add(keys::HEDGES_LOST, 1);
            r.instant(
                EXEC_PID,
                driver,
                "hedge:lose",
                "exec",
                vec![("layer", h.layer.into()), ("group", h.group.into())],
            );
        }
    }
}

/// Re-plan a program onto `n` workers: each layer's groups shrink
/// proportionally to their original sizes; if a layer has more groups than
/// workers remain, its groups are merged into one and their tasks run in
/// sequence (M-tasks are moldable, so task bodies adapt via
/// `ctx.rank`/`ctx.size`).
///
/// Used internally for shrink-and-continue after worker loss and for
/// [`ResizeHandle`] boundary resizes; public so multi-tenant layers can
/// re-target a program between gang time slices.
pub fn replan(program: &Program, n: usize) -> Program {
    assert!(n >= 1, "cannot re-plan onto zero workers");
    let mut p = program.clone();
    for layer in &mut p.layers {
        if layer.is_empty() {
            continue;
        }
        if layer.len() <= n {
            let weights: Vec<f64> = layer.iter().map(|g| g.workers.len() as f64).collect();
            let sizes = crate::dynamic::proportional_sizes(&weights, n);
            let mut lo = 0usize;
            *layer = layer
                .iter()
                .zip(sizes)
                .map(|(g, s)| {
                    let plan = GroupPlan::new(lo..lo + s, g.tasks.clone());
                    lo += s;
                    plan
                })
                .collect();
        } else {
            let tasks: Vec<Arc<TaskFn>> =
                layer.iter().flat_map(|g| g.tasks.iter().cloned()).collect();
            *layer = vec![GroupPlan::new(0..n, tasks)];
        }
    }
    p
}

impl Drop for Team {
    fn drop(&mut self) {
        for tx in &self.senders {
            // Lost workers have exited; sending to them just fails.
            let _ = tx.send(Msg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(idx: usize, rx: Receiver<Msg>, done: Sender<WorkerReport>) {
    while let Ok(Msg::Run(req)) = rx.recv() {
        let seq = req.shared.seq;
        let lost = run_layers(idx, &req);
        let _ = done.send(WorkerReport {
            worker: idx,
            lost,
            seq,
        });
        if lost {
            // Permanent loss: the thread exits and never rejoins the team.
            return;
        }
    }
}

/// How one worker's slice of a layer ended.
enum SliceEnd {
    /// All tasks ran to completion.
    Completed,
    /// A hedge won the group's slice; remaining tasks were skipped.
    HedgeWon,
    /// The monitor demoted this rank mid-slice; it must exit as lost.
    Demoted,
}

/// One worker's side of a run attempt.  Returns `true` if the worker was
/// (injected as, or demoted to) permanently lost.
fn run_layers(idx: usize, req: &RunRequest) -> bool {
    let me = req
        .shared
        .roster
        .iter()
        .position(|&w| w == idx)
        .expect("worker is in the roster");
    let lost = run_layers_inner(idx, me, req);
    if let Some(fs) = &req.shared.fail_slow {
        // A demoted lane stays demoted (the record is the monitor's);
        // everything else parks as finished so the monitor ignores it.
        if !fs.board.is_demoted(me) {
            fs.board.finish(me);
        }
    }
    lost
}

fn run_layers_inner(idx: usize, me: usize, req: &RunRequest) -> bool {
    let sh = &req.shared;
    let rec = sh.recorder.as_deref();
    let fs = sh.fail_slow.as_deref();
    let tid = idx as u32;
    for (layer_idx, layer) in req.program.layers.iter().enumerate().skip(sh.start_layer) {
        let attempt = if layer_idx == sh.start_layer {
            sh.attempt
        } else {
            1
        };
        // Logical rank 0 decides a pending malleable resize before the
        // entry barrier; the barrier publishes the verdict, so every rank
        // observes the same decision and leaves the attempt at the same
        // boundary.  One `Option` branch when no channel is attached.
        let mut resized = false;
        if me == 0 {
            if let Some(h) = &sh.resize {
                if let Some(w) = h.take(layer_idx, sh.roster.len(), req.program.required_workers())
                {
                    *lock(&sh.resize_decision) = Some((layer_idx, w));
                    resized = true;
                }
            }
        }
        // Logical rank 0 snapshots the store before anyone starts the
        // layer; the entry barrier publishes the snapshot and guarantees no
        // task of this layer has run yet.
        if sh.snapshots && me == 0 && !resized {
            let t0 = rec.map_or(0.0, Recorder::now_us);
            *lock(&sh.snapshot) = Some(req.store.snapshot());
            if let Some(r) = rec {
                r.add(keys::SNAPSHOTS, 1);
                r.span_args(
                    EXEC_PID,
                    tid,
                    "snapshot",
                    "store",
                    t0,
                    vec![("layer", layer_idx.into())],
                );
            }
        }
        let bar_t0 = rec.map_or(0.0, Recorder::now_us);
        if sh.barrier.wait().is_err() {
            return false;
        }
        record_barrier(rec, tid, layer_idx, "barrier:enter", bar_t0);
        if sh.resize.is_some() && lock(&sh.resize_decision).is_some() {
            // A resize was decided at this boundary: every rank leaves the
            // attempt here (nothing of this layer has run) and the driver
            // re-plans the remaining layers onto the new width.
            return false;
        }
        if let Some(fs) = fs {
            fs.board.begin_layer(me, layer_idx);
        }
        let mut inject_panic = false;
        let mut slow = 1.0f64;
        let mut stall = false;
        for kind in sh.faults.firing(layer_idx, me, attempt) {
            match kind {
                FaultKind::Delay(d) => {
                    if let Some(r) = rec {
                        r.add(keys::FAULTS_INJECTED, 1);
                        r.add(keys::FAULT_DELAY_US, d.as_micros() as u64);
                        r.instant(
                            EXEC_PID,
                            tid,
                            "fault:delay",
                            "fault",
                            vec![
                                ("layer", layer_idx.into()),
                                ("attempt", attempt.into()),
                                ("delay_us", (d.as_micros() as usize).into()),
                            ],
                        );
                    }
                    std::thread::sleep(*d);
                    if let Some(fs) = fs {
                        fs.board.stamp(me);
                    }
                }
                FaultKind::Panic => {
                    if let Some(r) = rec {
                        r.add(keys::FAULTS_INJECTED, 1);
                        r.instant(
                            EXEC_PID,
                            tid,
                            "fault:panic",
                            "fault",
                            vec![("layer", layer_idx.into()), ("attempt", attempt.into())],
                        );
                    }
                    inject_panic = true;
                }
                FaultKind::Flaky { p } => {
                    if sh.faults.flaky_fires(*p, layer_idx, me, attempt) {
                        if let Some(r) = rec {
                            r.add(keys::FAULTS_INJECTED, 1);
                            r.instant(
                                EXEC_PID,
                                tid,
                                "fault:flaky",
                                "fault",
                                vec![("layer", layer_idx.into()), ("attempt", attempt.into())],
                            );
                        }
                        inject_panic = true;
                    }
                }
                FaultKind::SlowFactor(f) => {
                    if let Some(r) = rec {
                        r.add(keys::FAULTS_INJECTED, 1);
                        r.instant(
                            EXEC_PID,
                            tid,
                            "fault:slow",
                            "fault",
                            vec![("layer", layer_idx.into()), ("attempt", attempt.into())],
                        );
                    }
                    slow = slow.max(*f);
                }
                FaultKind::Stall => {
                    if let Some(r) = rec {
                        r.add(keys::FAULTS_INJECTED, 1);
                        r.instant(
                            EXEC_PID,
                            tid,
                            "fault:stall",
                            "fault",
                            vec![("layer", layer_idx.into()), ("attempt", attempt.into())],
                        );
                    }
                    stall = true;
                }
                FaultKind::Lose => {
                    if let Some(r) = rec {
                        r.add(keys::FAULTS_INJECTED, 1);
                        r.instant(
                            EXEC_PID,
                            tid,
                            "fault:lose",
                            "fault",
                            vec![("layer", layer_idx.into()), ("attempt", attempt.into())],
                        );
                    }
                    // Record first, then poison, then shrink the barrier:
                    // peers that unwind or arrive afterwards must observe
                    // the failure.
                    record_failure(
                        sh,
                        Failure::Lost {
                            layer: layer_idx,
                            worker: idx,
                        },
                    );
                    if let Some(fs) = fs {
                        if !fs.board.try_finish(me, layer_idx) {
                            // The monitor demoted us first and has already
                            // poisoned and left the barrier on our behalf.
                            return true;
                        }
                    }
                    if let Some((gi, _)) = Program::find_role(layer, me) {
                        layer[gi].comm.poison();
                    }
                    sh.barrier.leave();
                    return true;
                }
            }
        }
        if stall {
            // Fail-slow stall: no heartbeats, no progress, no crash.
            // Without a monitor this wedges the run (exactly the contract
            // the chaos gate's watchdog-off test asserts); with one, the
            // rank's heartbeat goes stale and it is demoted.
            loop {
                std::thread::sleep(Duration::from_millis(5));
                if let Some(fs) = fs {
                    if fs.board.is_demoted(me) {
                        return true;
                    }
                }
            }
        }
        if let Some((gi, rank)) = Program::find_role(layer, me) {
            let group = &layer[gi];
            let ctx = TaskCtx {
                rank,
                size: group.workers.len(),
                comm: &group.comm,
                store: &req.store,
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if inject_panic {
                    // resume_unwind skips the panic hook: injected faults
                    // are expected control flow, not bug reports.
                    std::panic::resume_unwind(Box::new(format!(
                        "injected panic (layer {layer_idx}, rank {me}, attempt {attempt})"
                    )));
                }
                for (k, task) in group.tasks.iter().enumerate() {
                    if let Some(fs) = fs {
                        if fs.hedge_has_won(layer_idx, gi) {
                            return SliceEnd::HedgeWon;
                        }
                        if fs.board.is_demoted(me) {
                            return SliceEnd::Demoted;
                        }
                    }
                    let t0 = rec.map_or(0.0, Recorder::now_us);
                    let slow_t0 = (slow > 1.0).then(Instant::now);
                    task(&ctx);
                    if let Some(fs) = fs {
                        fs.board.stamp(me);
                    }
                    if let Some(r) = rec {
                        let dur_s = (r.now_us() - t0) / 1e6;
                        r.add(keys::TASKS_RUN, 1);
                        r.observe(keys::TASK_SECONDS, dur_s);
                        r.span_args(
                            EXEC_PID,
                            tid,
                            &format!("L{layer_idx}.g{gi}.t{k}"),
                            "task",
                            t0,
                            vec![
                                ("layer", layer_idx.into()),
                                ("group", gi.into()),
                                ("task_index", k.into()),
                                ("attempt", attempt.into()),
                                ("rank", rank.into()),
                            ],
                        );
                    }
                    if let Some(slow_t0) = slow_t0 {
                        // Injected slowdown: stretch the task by (f − 1)×
                        // its measured duration, in heartbeat-publishing
                        // chunks so the monitor sees a straggler, not a
                        // corpse.
                        let stretch = slow_t0.elapsed().mul_f64(slow - 1.0);
                        if let Some(end) = stretched_sleep(fs, layer_idx, gi, me, stretch) {
                            return end;
                        }
                    }
                }
                SliceEnd::Completed
            }));
            match result {
                Ok(SliceEnd::Completed) => {
                    if let Some(fs) = fs {
                        fs.primary_done[layer_idx][gi].fetch_add(1, Ordering::AcqRel);
                    }
                }
                Ok(SliceEnd::HedgeWon) => {
                    // Cancelled in favour of the winning hedge; the hedge's
                    // overlay carries the slice's (identical) results.
                }
                Ok(SliceEnd::Demoted) => return true,
                Err(payload) => {
                    if payload.downcast_ref::<CollectiveAborted>().is_some() {
                        if fs.is_some_and(|fs| fs.hedge_has_won(layer_idx, gi)) {
                            // The winning hedge poisoned our communicator
                            // to cancel us — expected, not a failure.
                        } else if fs.is_some_and(|fs| fs.board.is_demoted(me)) {
                            // Demoted while blocked in a collective; the
                            // monitor already left the barrier for us.
                            return true;
                        } else {
                            // Victim of a peer failure.  The culprit
                            // records before poisoning, so this only sticks
                            // when the communicator was poisoned from
                            // outside the runtime.
                            record_failure(
                                sh,
                                Failure::Abort {
                                    layer: layer_idx,
                                    group: gi,
                                },
                            );
                            if let Some(r) = rec {
                                r.add(keys::COLLECTIVE_ABORTS, 1);
                                r.instant(
                                    EXEC_PID,
                                    tid,
                                    "collective_abort",
                                    "fault",
                                    vec![("layer", layer_idx.into()), ("group", gi.into())],
                                );
                            }
                        }
                    } else {
                        record_failure(
                            sh,
                            Failure::Panic {
                                layer: layer_idx,
                                group: gi,
                                payload: payload_text(payload.as_ref()),
                            },
                        );
                        // Unblock group peers waiting in a collective for us.
                        group.comm.poison();
                        if let Some(r) = rec {
                            r.instant(
                                EXEC_PID,
                                tid,
                                "panic",
                                "fault",
                                vec![("layer", layer_idx.into()), ("group", gi.into())],
                            );
                        }
                    }
                }
            }
        }
        if let Some(fs) = fs {
            if !fs.board.try_enter_barrier(me, layer_idx) {
                // Demoted at the barrier edge; the monitor left the
                // barrier on our behalf — joining it now would double-count.
                return true;
            }
        }
        // Layer barrier: re-distributions (DataStore writes) become visible
        // to every group before the next layer starts — and every worker
        // observes a failure of this layer at the same point.
        let bar_t0 = rec.map_or(0.0, Recorder::now_us);
        if sh.barrier.wait().is_err() {
            return false;
        }
        record_barrier(rec, tid, layer_idx, "barrier:exit", bar_t0);
        if lock(&sh.failure).is_some() {
            // Failed attempt: leftover hedges are finalized by the driver.
            return false;
        }
        if me == 0 {
            if let Some(fs) = fs {
                // Commit or discard this layer's hedges while every peer
                // is parked at the next entry barrier (no store readers).
                hedge_commit_phase(req, fs, layer_idx, rec, tid);
            }
        }
    }
    false
}

/// Sleep `total` in small chunks, publishing heartbeats and honouring
/// demotion / hedge-win cancellation.  Returns `Some` when the slice must
/// end early.
fn stretched_sleep(
    fs: Option<&FailSlowShared>,
    layer: usize,
    group: usize,
    me: usize,
    total: Duration,
) -> Option<SliceEnd> {
    let mut left = total;
    while left > Duration::ZERO {
        let chunk = left.min(Duration::from_millis(2));
        std::thread::sleep(chunk);
        left = left.saturating_sub(chunk);
        if let Some(fs) = fs {
            fs.board.stamp(me);
            if fs.board.is_demoted(me) {
                return Some(SliceEnd::Demoted);
            }
            if fs.hedge_has_won(layer, group) {
                return Some(SliceEnd::HedgeWon);
            }
        }
    }
    None
}

/// The per-attempt monitor: ticks every [`DeadlinePolicy::poll`], reads the
/// heartbeat board, and drives deadline misses, hedging, demotion, and the
/// global watchdog.  Runs on the driver's trace lane.
fn monitor_loop(req: Arc<RunRequest>, done: Sender<WorkerReport>, driver: u32) {
    let sh = &req.shared;
    let fs = sh
        .fail_slow
        .clone()
        .expect("monitor runs only with a deadline policy");
    let rec = sh.recorder.as_deref();
    let start = Instant::now();
    let mut missed: HashSet<usize> = HashSet::new();
    let mut global_fired = false;
    while !fs.monitor_done.load(Ordering::Acquire) {
        std::thread::sleep(fs.policy.poll);
        if fs.monitor_done.load(Ordering::Acquire) {
            break;
        }
        let now = fs.board.now_us();
        let states: Vec<LaneState> = (0..fs.board.ranks()).map(|r| fs.board.state(r)).collect();
        if let Some(r) = rec {
            if let Some(age) = states
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, LaneState::Running(_)))
                .map(|(i, _)| fs.board.stamp_age_us(i, now))
                .max()
            {
                r.observe(keys::HEARTBEAT_AGE, age as f64 / 1e6);
            }
        }
        if let Some(bound) = fs.policy.global_timeout {
            if !global_fired && start.elapsed() > bound {
                global_fired = true;
                fire_watchdog(&req, &fs, &done, &states, rec, driver);
            }
        }
        if fs.policy.layer_budgets.is_empty() {
            continue;
        }
        // The frontier is the earliest layer any rank is still in: layers
        // behind it are complete, layers past it haven't started for the
        // laggards — deadlines are judged at the frontier.
        let Some(frontier) = states
            .iter()
            .filter_map(|s| match s {
                LaneState::Running(l) | LaneState::Waiting(l) => Some(*l),
                _ => None,
            })
            .min()
        else {
            continue;
        };
        let Some(deadline) = fs.policy.effective_deadline(frontier) else {
            continue;
        };
        let Some(entry) = fs.board.layer_entry_us(frontier) else {
            continue;
        };
        if now.saturating_sub(entry) <= deadline.as_micros() as u64 {
            continue;
        }
        if missed.insert(frontier) {
            if let Some(r) = rec {
                r.add(keys::DEADLINE_MISSES, 1);
                r.instant(
                    EXEC_PID,
                    driver,
                    "deadline:miss",
                    "exec",
                    vec![("layer", frontier.into())],
                );
            }
        }
        let dead_us = fs.policy.dead_after.as_micros() as u64;
        let mut dead: Option<(usize, usize, u64)> = None;
        for (rank, s) in states.iter().enumerate() {
            let LaneState::Running(l) = *s else { continue };
            if l != frontier {
                continue;
            }
            let Some((gi, _)) = Program::find_role(&req.program.layers[l], rank) else {
                continue;
            };
            let age = fs.board.stamp_age_us(rank, now);
            if age > dead_us {
                // Silent past the dead threshold: fail-slow degenerated to
                // fail-stop — demote to lost, shrink-and-continue recovers.
                // Keep the stalest candidate only; see below.
                if dead.is_none_or(|(_, _, a)| age > a) {
                    dead = Some((rank, l, age));
                }
            } else {
                match fs.policy.action {
                    MissAction::Demote => monitor_demote(&req, &fs, &done, rank, l, rec, driver),
                    MissAction::Hedge => maybe_hedge(&req, &fs, l, gi, rec, driver),
                }
            }
        }
        // Demote at most ONE dead rank per tick, stalest first: a rank
        // blocked in a collective waiting on a corpse is itself silent, so
        // demoting every stale lane at once would sweep up the victims
        // with the culprit.  Demoting only the stalest rank poisons its
        // group, its blocked peers unwind within the next tick, and the
        // loss accounting stays one-demotion-per-actual-corpse.
        if let Some((rank, l, _)) = dead {
            monitor_demote(&req, &fs, &done, rank, l, rec, driver);
        }
    }
}

/// Global-watchdog firing: record the failure, then demote every rank
/// still running so the wedged attempt unwinds in bounded time.
fn fire_watchdog(
    req: &Arc<RunRequest>,
    fs: &Arc<FailSlowShared>,
    done: &Sender<WorkerReport>,
    states: &[LaneState],
    rec: Option<&TraceRecorder>,
    driver: u32,
) {
    let sh = &req.shared;
    let stuck: Vec<(usize, usize)> = states
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            LaneState::Running(l) => Some((i, *l)),
            _ => None,
        })
        .collect();
    if stuck.is_empty() {
        return;
    }
    let layer = stuck.iter().map(|&(_, l)| l).min().expect("non-empty");
    let stalled: Vec<usize> = stuck.iter().map(|&(i, _)| sh.roster[i]).collect();
    record_failure(sh, Failure::Watchdog { layer, stalled });
    if let Some(r) = rec {
        r.add(keys::WATCHDOG_FIRES, 1);
        r.instant(
            EXEC_PID,
            driver,
            "watchdog",
            "fault",
            vec![("layer", layer.into()), ("stalled", stuck.len().into())],
        );
    }
    for (rank, l) in stuck {
        monitor_demote(req, fs, done, rank, l, rec, driver);
    }
}

/// Monitor-side demotion of `rank` (expected in `layer`) to a permanent
/// loss: CAS the lane (losing the race to a rank that moved on aborts the
/// demotion), record the failure, poison the rank's group, leave the
/// barrier on its behalf and proxy-report it as lost.
fn monitor_demote(
    req: &Arc<RunRequest>,
    fs: &FailSlowShared,
    done: &Sender<WorkerReport>,
    rank: usize,
    layer: usize,
    rec: Option<&TraceRecorder>,
    driver: u32,
) {
    if !fs.board.demote(rank, layer) {
        return;
    }
    let sh = &req.shared;
    let phys = sh.roster[rank];
    record_failure(
        sh,
        Failure::Lost {
            layer,
            worker: phys,
        },
    );
    if let Some((gi, _)) = Program::find_role(&req.program.layers[layer], rank) {
        req.program.layers[layer][gi].comm.poison();
    }
    sh.barrier.leave();
    if let Some(r) = rec {
        r.add(keys::DEMOTIONS, 1);
        r.instant(
            EXEC_PID,
            driver,
            "demote",
            "exec",
            vec![("layer", layer.into()), ("rank", rank.into())],
        );
    }
    let _ = done.send(WorkerReport {
        worker: phys,
        lost: true,
        seq: sh.seq,
    });
}

/// Everything one hedge thread needs (bundled so the spawn stays readable).
struct HedgeJob {
    req: Arc<RunRequest>,
    fs: Arc<FailSlowShared>,
    layer: usize,
    group: usize,
    rank: usize,
    overlay: Arc<DataStore>,
    comm: Arc<GroupComm>,
    cancel: Arc<AtomicBool>,
    outcome: Arc<HedgeOutcome>,
}

/// Spawn a speculative duplicate of `layer`'s group `gi` against a private
/// overlay of the layer-entry snapshot, unless one exists, the layer is
/// closed, or the hedge budget is spent.
fn maybe_hedge(
    req: &Arc<RunRequest>,
    fs: &Arc<FailSlowShared>,
    layer: usize,
    gi: usize,
    rec: Option<&TraceRecorder>,
    driver: u32,
) {
    let mut st = lock(&fs.hedge_state);
    if st.finished
        || st.count >= fs.policy.max_hedges
        || st.closed.contains(&layer)
        || st.spawned.contains(&(layer, gi))
    {
        return;
    }
    // The layer-entry snapshot is the hedge's starting state; without one
    // (nothing snapshotted yet) there is nothing sound to execute against.
    let Some(base) = lock(&req.shared.snapshot).clone() else {
        return;
    };
    let group = &req.program.layers[layer][gi];
    let size = group.workers.len();
    let overlay = DataStore::from_snapshot(&base);
    let comm = Arc::new(GroupComm::new(size));
    let cancel = Arc::new(AtomicBool::new(false));
    let outcome = Arc::new(HedgeOutcome {
        remaining: AtomicUsize::new(size),
        failed: AtomicBool::new(false),
        won: AtomicBool::new(false),
        done: AtomicBool::new(false),
    });
    let mut handles = Vec::with_capacity(size);
    for hr in 0..size {
        let job = HedgeJob {
            req: req.clone(),
            fs: fs.clone(),
            layer,
            group: gi,
            rank: hr,
            overlay: overlay.clone(),
            comm: comm.clone(),
            cancel: cancel.clone(),
            outcome: outcome.clone(),
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("pt-hedge-L{layer}g{gi}r{hr}"))
                .spawn(move || hedge_worker(job))
                .expect("spawn hedge"),
        );
    }
    st.spawned.insert((layer, gi));
    st.count += 1;
    st.hedges.push(Hedge {
        layer,
        group: gi,
        cancel,
        comm,
        outcome,
        overlay,
        base,
        handles,
    });
    drop(st);
    if let Some(r) = rec {
        r.add(keys::HEDGES_SPAWNED, 1);
        r.instant(
            EXEC_PID,
            driver,
            "hedge:spawn",
            "exec",
            vec![("layer", layer.into()), ("group", gi.into())],
        );
    }
}

/// One hedge thread: run the group's task slice against the overlay.  The
/// last thread out decides the outcome — the hedge wins iff no thread
/// failed/cancelled and the primary group hasn't already completed; a win
/// poisons the primary communicator so remaining stragglers cancel.
fn hedge_worker(job: HedgeJob) {
    let group = &job.req.program.layers[job.layer][job.group];
    let size = group.workers.len();
    let ctx = TaskCtx {
        rank: job.rank,
        size,
        comm: &job.comm,
        store: &job.overlay,
    };
    let completed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for task in group.tasks.iter() {
            if job.cancel.load(Ordering::Relaxed) {
                return false;
            }
            task(&ctx);
        }
        true
    }));
    if !matches!(completed, Ok(true)) {
        job.outcome.failed.store(true, Ordering::Release);
        // Unblock hedge peers waiting for us in a collective.
        job.comm.poison();
    }
    if job.outcome.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        if !job.outcome.failed.load(Ordering::Acquire)
            && job.fs.primary_done[job.layer][job.group].load(Ordering::Acquire) < size
        {
            // First finisher wins: flag the win before poisoning, so a
            // primary unwinding from the poison observes the flag and
            // treats the abort as cancellation, not failure.
            job.outcome.won.store(true, Ordering::Release);
            job.fs.hedge_won[job.layer][job.group].store(true, Ordering::Release);
            group.comm.poison();
        }
        job.outcome.done.store(true, Ordering::Release);
    }
}

/// Layer-boundary hedge settlement, run by logical rank 0 after the exit
/// barrier of a *successful* layer: close the layer to new hedges, join
/// its hedge threads, commit the winner's overlay diff (and reset the
/// poisoned primary communicator), discard losers.
fn hedge_commit_phase(
    req: &RunRequest,
    fs: &FailSlowShared,
    layer: usize,
    rec: Option<&TraceRecorder>,
    tid: u32,
) {
    let mine: Vec<Hedge> = {
        let mut st = lock(&fs.hedge_state);
        st.closed.insert(layer);
        let mut kept = Vec::new();
        let mut mine = Vec::new();
        for h in st.hedges.drain(..) {
            if h.layer == layer {
                mine.push(h);
            } else {
                kept.push(h);
            }
        }
        st.hedges = kept;
        mine
    };
    for mut h in mine {
        if !h.outcome.done.load(Ordering::Acquire) {
            h.cancel.store(true, Ordering::Relaxed);
            h.comm.poison();
        }
        for handle in h.handles.drain(..) {
            let _ = handle.join();
        }
        if h.outcome.won.load(Ordering::Acquire) {
            // Commit: overlay entries that differ from the layer-entry
            // snapshot are the slice's outputs.  Identical names written by
            // the cancelled primary are overwritten with bit-identical data
            // (tasks are deterministic), so first-finisher-wins is
            // value-transparent.
            let after = h.overlay.snapshot();
            for (name, data) in after.entries() {
                if h.base.get(name) != Some(data.as_slice()) {
                    req.store.put(name.clone(), data.clone());
                }
            }
            for (name, _) in h.base.entries() {
                if after.get(name).is_none() {
                    req.store.remove(name);
                }
            }
            // The win poisoned the primary communicator to cancel the
            // straggler; everyone is past the exit barrier now, so it can
            // be made reusable again.
            req.program.layers[layer][h.group].comm.reset();
            if let Some(r) = rec {
                r.add(keys::HEDGES_WON, 1);
                r.instant(
                    EXEC_PID,
                    tid,
                    "hedge:win",
                    "exec",
                    vec![("layer", layer.into()), ("group", h.group.into())],
                );
            }
        } else if let Some(r) = rec {
            r.add(keys::HEDGES_LOST, 1);
            r.instant(
                EXEC_PID,
                tid,
                "hedge:lose",
                "exec",
                vec![("layer", layer.into()), ("group", h.group.into())],
            );
        }
    }
}

/// Record one barrier wait as a span plus a histogram observation.
fn record_barrier(
    rec: Option<&TraceRecorder>,
    tid: u32,
    layer: usize,
    name: &'static str,
    start_us: f64,
) {
    if let Some(r) = rec {
        let wait_s = (r.now_us() - start_us) / 1e6;
        r.observe(keys::BARRIER_WAIT, wait_s);
        r.span_args(
            EXEC_PID,
            tid,
            name,
            "barrier",
            start_us,
            vec![("layer", layer.into())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{GroupPlan, TaskCtx, TaskFn};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn two_groups_run_concurrently_and_join_layers() {
        let team = Team::new(4);
        let store = DataStore::new();
        store.put("sum0", vec![0.0]);
        store.put("sum1", vec![0.0]);
        // Layer 1: each group of 2 allreduces its ranks and publishes.
        let make = |name: &'static str| -> Arc<TaskFn> {
            Arc::new(move |ctx: &TaskCtx| {
                let mut v = vec![ctx.rank as f64 + 1.0];
                ctx.comm.allreduce_sum(ctx.rank, &mut v);
                if ctx.rank == 0 {
                    ctx.store.put(name, v);
                }
            })
        };
        // Layer 2: one group of 4 adds both sums.
        let combine: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            if ctx.rank == 0 {
                let a = ctx.store.get("sum0").unwrap()[0];
                let b = ctx.store.get("sum1").unwrap()[0];
                ctx.store.put("total", vec![a + b]);
            }
        });
        let mut program = Program::single_layer(vec![
            GroupPlan::new(0..2, vec![make("sum0")]),
            GroupPlan::new(2..4, vec![make("sum1")]),
        ]);
        program.push_layer(vec![GroupPlan::new(0..4, vec![combine])]);
        team.run(&program, &store).unwrap();
        assert_eq!(store.get("total").unwrap(), vec![6.0]); // (1+2) + (1+2)
    }

    #[test]
    fn all_workers_participate() {
        let team = Team::new(8);
        let store = DataStore::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let task: Arc<TaskFn> = Arc::new(move |_ctx: &TaskCtx| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..8, vec![task])]);
        team.run(&program, &store).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn sequential_tasks_within_group_are_ordered() {
        let team = Team::new(2);
        let store = DataStore::new();
        store.put("log", vec![]);
        let t1: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            ctx.comm.barrier();
            if ctx.rank == 0 {
                ctx.store.put("log", vec![1.0]);
            }
            ctx.comm.barrier();
        });
        let t2: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            ctx.comm.barrier();
            if ctx.rank == 0 {
                let mut l = ctx.store.get("log").unwrap();
                l.push(2.0);
                ctx.store.put("log", l);
            }
            ctx.comm.barrier();
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![t1, t2])]);
        team.run(&program, &store).unwrap();
        assert_eq!(store.get("log").unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn team_is_reusable_across_runs() {
        let team = Team::new(3);
        let store = DataStore::new();
        for round in 0..5 {
            let task: Arc<TaskFn> = Arc::new(move |ctx: &TaskCtx| {
                if ctx.rank == 0 {
                    ctx.store.put("round", vec![round as f64]);
                }
            });
            let program = Program::single_layer(vec![GroupPlan::new(0..3, vec![task])]);
            team.run(&program, &store).unwrap();
            assert_eq!(store.get("round").unwrap(), vec![round as f64]);
        }
    }

    #[test]
    fn idle_workers_do_not_block_layers() {
        // Program uses only 2 of 4 workers; the others still hit the layer
        // barrier and the run completes.
        let team = Team::new(4);
        let store = DataStore::new();
        let task: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            let mut v = vec![1.0];
            ctx.comm.allreduce_sum(ctx.rank, &mut v);
            if ctx.rank == 0 {
                ctx.store.put("n", v);
            }
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![task])]);
        team.run(&program, &store).unwrap();
        assert_eq!(store.get("n").unwrap(), vec![2.0]);
    }

    #[test]
    fn oversized_program_rejected_as_error() {
        let team = Team::new(2);
        let store = DataStore::new();
        let t: Vec<Arc<TaskFn>> = vec![];
        let program = Program::single_layer(vec![GroupPlan::new(0..4, t)]);
        match team.run(&program, &store) {
            Err(ExecError::InvalidProgram(msg)) => {
                assert!(msg.contains("program needs"), "got: {msg}")
            }
            other => panic!("expected InvalidProgram, got {other:?}"),
        }
        // The rejection left the team fully usable.
        let ok = Program::single_layer(vec![GroupPlan::new(0..2, vec![])]);
        team.run(&ok, &store).unwrap();
    }

    #[test]
    fn overlapping_groups_rejected_as_error() {
        let team = Team::new(4);
        let store = DataStore::new();
        let t: Vec<Arc<TaskFn>> = vec![];
        let program = Program::single_layer(vec![
            GroupPlan::new(0..2, t.clone()),
            GroupPlan::new(1..3, t),
        ]);
        assert!(matches!(
            team.run(&program, &store),
            Err(ExecError::InvalidProgram(_))
        ));
    }

    #[test]
    fn replan_shrinks_groups_proportionally() {
        let t: Vec<Arc<TaskFn>> = vec![];
        let mut program = Program::single_layer(vec![
            GroupPlan::new(0..4, t.clone()),
            GroupPlan::new(4..8, t.clone()),
        ]);
        program.push_layer(vec![GroupPlan::new(0..8, t.clone())]);
        let shrunk = replan(&program, 6);
        assert_eq!(shrunk.required_workers(), 6);
        let sizes: Vec<usize> = shrunk.layers[0].iter().map(|g| g.workers.len()).collect();
        assert_eq!(sizes, vec![3, 3]);
        assert!(shrunk.validate().is_ok());
    }

    #[test]
    fn replan_merges_when_fewer_workers_than_groups() {
        let t: Vec<Arc<TaskFn>> = vec![Arc::new(|_: &TaskCtx| {})];
        let program = Program::single_layer(vec![
            GroupPlan::new(0..1, t.clone()),
            GroupPlan::new(1..2, t.clone()),
            GroupPlan::new(2..3, t.clone()),
        ]);
        let shrunk = replan(&program, 2);
        assert_eq!(shrunk.layers[0].len(), 1);
        assert_eq!(shrunk.layers[0][0].workers, 0..2);
        // Tasks of all three groups now run in sequence on the merged group.
        assert_eq!(shrunk.layers[0][0].tasks.len(), 3);
    }

    /// A width-independent data-parallel layer: scale `v` by `factor`
    /// block-wise and allgather the result (same output for any width).
    fn scale_layer(factor: f64) -> Arc<TaskFn> {
        Arc::new(move |ctx: &TaskCtx| {
            let v = ctx.store.get("v").unwrap();
            let n = v.len();
            let range = ctx.block_range(n);
            let local: Vec<f64> = v[range].iter().map(|x| x * factor).collect();
            let counts: Vec<usize> = (0..ctx.size)
                .map(|r| crate::program::block_range(n, r, ctx.size).len())
                .collect();
            let mut full = vec![0.0; n];
            ctx.comm.allgatherv(ctx.rank, &local, &counts, &mut full);
            if ctx.rank == 0 {
                ctx.store.put("v", full);
            }
        })
    }

    /// `layers` data-parallel scaling layers, all on `0..width`, with a
    /// distinct factor per layer so layer order is observable.
    fn scale_program(layers: usize, width: usize) -> Program {
        let mut program =
            Program::single_layer(vec![GroupPlan::new(0..width, vec![scale_layer(2.0)])]);
        for l in 1..layers {
            program.push_layer(vec![GroupPlan::new(
                0..width,
                vec![scale_layer(1.0 + l as f64)],
            )]);
        }
        program
    }

    #[test]
    fn scripted_resize_is_bit_identical_to_uninterrupted_run() {
        let team = Team::new(4);
        let seed: Vec<f64> = (0..13).map(|i| i as f64 * 0.25 + 1.0).collect();
        let baseline = DataStore::new();
        baseline.put("v", seed.clone());
        team.run(&scale_program(6, 4), &baseline).unwrap();

        let store = DataStore::new();
        store.put("v", seed);
        let h = ResizeHandle::new();
        h.request_at(1, 2); // shrink at entry of layer 1
        h.request_at(3, 3); // regrow at entry of layer 3
        h.request_at(4, 4); // regrow to the full width
        let opts = RunOptions::default().with_resize(h.clone());
        team.run_with(&scale_program(6, 4), &store, &opts).unwrap();
        assert_eq!(h.applied(), 3);
        assert!(!h.pending());
        assert_eq!(store.snapshot(), baseline.snapshot());
    }

    #[test]
    fn resize_changes_group_width_at_the_boundary() {
        let team = Team::new(4);
        let sizes = Arc::new(Mutex::new(Vec::new()));
        let mut program: Option<Program> = None;
        for l in 0..5usize {
            let sizes = sizes.clone();
            let task: Arc<TaskFn> = Arc::new(move |ctx: &TaskCtx| {
                if ctx.rank == 0 {
                    lock(&sizes).push((l, ctx.size));
                }
            });
            let plan = vec![GroupPlan::new(0..4, vec![task])];
            match &mut program {
                None => program = Some(Program::single_layer(plan)),
                Some(p) => {
                    p.push_layer(plan);
                }
            }
        }
        let h = ResizeHandle::new();
        h.request_at(2, 2);
        h.request_at(2, 3); // several requests for one layer: last wins
        let opts = RunOptions::default().with_resize(h.clone());
        let store = DataStore::new();
        team.run_with(&program.unwrap(), &store, &opts).unwrap();
        assert_eq!(h.applied(), 1);
        assert_eq!(*lock(&sizes), vec![(0, 4), (1, 4), (2, 3), (3, 3), (4, 3)]);
    }

    #[test]
    fn noop_and_async_resize_requests() {
        let team = Team::new(3);
        let seed: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let h = ResizeHandle::new();
        let opts = RunOptions::default().with_resize(h.clone());

        // A request matching the current width is dropped without a replan.
        h.request(3);
        let store = DataStore::new();
        store.put("v", seed.clone());
        team.run_with(&scale_program(3, 3), &store, &opts).unwrap();
        assert_eq!(h.applied(), 0);
        assert!(!h.pending());

        // An asynchronous request applies at the next boundary (here the
        // first layer's entry) and the shrunk run computes the same result.
        let baseline = store.snapshot();
        let store2 = DataStore::new();
        store2.put("v", seed);
        h.request(2);
        team.run_with(&scale_program(3, 3), &store2, &opts).unwrap();
        assert_eq!(h.applied(), 1);
        assert_eq!(store2.snapshot(), baseline);
    }

    #[test]
    fn backoff_is_capped_and_deterministically_jittered() {
        let p = RetryPolicy::attempts(8)
            .with_backoff(Duration::from_millis(10))
            .with_max_backoff(Duration::from_millis(40));
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        // The exponential curve saturates at the ceiling.
        assert_eq!(p.backoff(7), Duration::from_millis(40));
        let j = p.clone().with_jitter(0.5, 42);
        let seq_a: Vec<Duration> = (1..=6).map(|n| j.backoff(n)).collect();
        let seq_b: Vec<Duration> = (1..=6).map(|n| j.backoff(n)).collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same sequence");
        for (i, &d) in seq_a.iter().enumerate() {
            let cap = p.backoff(i as u32 + 1);
            assert!(d <= cap, "jitter only shrinks: {d:?} vs {cap:?}");
            assert!(d >= cap.mul_f64(0.5), "jitter bounded by the fraction");
        }
        // A different seed flips at least one draw.
        let other = p.clone().with_jitter(0.5, 43);
        assert!((1..=6).any(|n| other.backoff(n) != j.backoff(n)));
        // Jitter never resurrects a zero backoff.
        assert_eq!(
            RetryPolicy::attempts(3).with_jitter(0.5, 1).backoff(1),
            Duration::ZERO
        );
    }

    fn spin_for(d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn hedge_races_straggler_and_commits_identical_result() {
        let team = Team::new(2);
        let store = DataStore::new();
        let task: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            spin_for(Duration::from_millis(5));
            let v = ctx.comm.allreduce_max_scalar(ctx.rank, 7.0);
            if ctx.rank == 0 {
                ctx.store.put("out", vec![v]);
            }
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![task])]);
        let rec = Arc::new(TraceRecorder::for_team(2));
        let mut opts = RunOptions::default()
            .with_recorder(rec.clone())
            .with_deadline(
                DeadlinePolicy::from_budgets(vec![Duration::from_millis(15)])
                    .with_slack(1.0)
                    .with_min_deadline(Duration::from_millis(15))
                    .with_poll(Duration::from_millis(2))
                    // Keep the straggler classified as straggling, not dead.
                    .with_dead_after(Duration::from_secs(30)),
            );
        // Rank 1 runs the layer 200× slower — far past the deadline.
        opts.faults = FaultPlan::new().slow_by(0, 1, 200.0);
        team.run_with(&program, &store, &opts).unwrap();
        assert_eq!(store.get("out").unwrap(), vec![7.0]);
        // Nobody was lost: the straggler was raced, not demoted.
        assert_eq!(team.alive_workers(), 2);
        let m = rec.metrics();
        assert!(m.counter(keys::HEDGES_SPAWNED).get() >= 1);
        assert_eq!(m.counter(keys::HEDGES_WON).get(), 1);
        assert!(m.counter(keys::DEADLINE_MISSES).get() >= 1);
        assert_eq!(m.counter(keys::DEMOTIONS).get(), 0);
        // The team (and the program's communicators) stay reusable.
        team.run(&program, &store).unwrap();
        assert_eq!(store.get("out").unwrap(), vec![7.0]);
    }

    #[test]
    fn dead_rank_is_demoted_and_run_continues_on_survivors() {
        let team = Team::new(3);
        let store = DataStore::new();
        let task: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            let v = ctx.comm.allreduce_max_scalar(ctx.rank, 3.0);
            if ctx.rank == 0 {
                ctx.store.put("r", vec![v]);
            }
        });
        let program = Program::single_layer(vec![GroupPlan::new(0..3, vec![task])]);
        let opts = RunOptions {
            retry: RetryPolicy::attempts(3),
            faults: FaultPlan::new().stall_at(0, 2, 1),
            recorder: None,
            deadline: Some(
                DeadlinePolicy::from_budgets(vec![Duration::from_millis(10)])
                    .with_slack(1.0)
                    .with_min_deadline(Duration::from_millis(10))
                    .with_dead_after(Duration::from_millis(40))
                    .with_poll(Duration::from_millis(2)),
            ),
            resize: None,
        };
        team.run_with(&program, &store, &opts).unwrap();
        // allreduce_max of identical values is group-size independent, so
        // the shrunken retry produces the bit-identical result.
        assert_eq!(store.get("r").unwrap(), vec![3.0]);
        assert_eq!(team.alive_workers(), 2);
    }

    #[test]
    fn global_watchdog_breaks_a_stall_wedge() {
        let team = Team::new(2);
        let store = DataStore::new();
        let task: Arc<TaskFn> = Arc::new(|_ctx: &TaskCtx| {});
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![task])]);
        let opts = RunOptions {
            faults: FaultPlan::new().stall_at(0, 1, 1),
            deadline: Some(DeadlinePolicy::watchdog(Duration::from_millis(200))),
            ..RunOptions::default()
        };
        let t0 = Instant::now();
        match team.run_with(&program, &store, &opts) {
            Err(ExecError::WatchdogTimeout { layer, stalled }) => {
                assert_eq!(layer, 0);
                assert_eq!(stalled, vec![1]);
            }
            other => panic!("expected WatchdogTimeout, got {other:?}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "bounded unwedging");
        assert_eq!(team.alive_workers(), 1);
        assert_eq!(team.monitors_spawned(), 1);
        // The survivor still runs programs.
        let ok = Program::single_layer(vec![GroupPlan::new(0..1, vec![])]);
        team.run(&ok, &store).unwrap();
    }

    #[test]
    fn no_deadline_policy_spawns_no_monitor() {
        let team = Team::new(2);
        let store = DataStore::new();
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![])]);
        team.run(&program, &store).unwrap();
        team.run_with(
            &program,
            &store,
            &RunOptions {
                retry: RetryPolicy::attempts(2),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(team.monitors_spawned(), 0);
    }
}
