//! A poisonable, reusable barrier with dynamic membership.
//!
//! `std::sync::Barrier` has no failure path: when a participant dies, every
//! peer blocks forever.  [`EpochBarrier`] closes that hole — it counts
//! *epochs* (completed rounds) under a mutex/condvar pair, so it can be
//!
//! * **poisoned** ([`EpochBarrier::poison`]): every current and future
//!   waiter returns `Err` instead of blocking, which is how a task panic is
//!   propagated to the peers of a collective;
//! * **reset** ([`EpochBarrier::reset`]) once all participants have
//!   observed the failure, making the barrier (and the communicator built
//!   on it) reusable for the next attempt;
//! * **shrunk** ([`EpochBarrier::leave`]) when a participant departs for
//!   good (permanent worker loss), releasing a round that is now complete
//!   without the departed member.

use std::sync::{Condvar, Mutex, PoisonError};

/// Error returned by [`EpochBarrier::wait`] when the barrier was poisoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPoisoned;

#[derive(Debug)]
struct State {
    /// Current number of participants per round.
    members: usize,
    /// Participants already waiting in the current round.
    arrived: usize,
    /// Completed rounds; waiters block until it advances.
    epoch: u64,
    poisoned: bool,
}

/// See the module documentation.
#[derive(Debug)]
pub struct EpochBarrier {
    state: Mutex<State>,
    cvar: Condvar,
}

impl EpochBarrier {
    /// Barrier for `members` participants.
    pub fn new(members: usize) -> EpochBarrier {
        assert!(members >= 1, "barrier needs at least one member");
        EpochBarrier {
            state: Mutex::new(State {
                members,
                arrived: 0,
                epoch: 0,
                poisoned: false,
            }),
            cvar: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // The mutex is only held for bookkeeping below — a panic while it
        // is held is impossible, but don't propagate std's lock poisoning
        // (distinct from *our* poison flag) just in case.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until all members arrive.  Returns `Err` without blocking if
    /// the barrier is poisoned, or as soon as it becomes poisoned while
    /// waiting.
    pub fn wait(&self) -> Result<(), BarrierPoisoned> {
        let mut s = self.lock();
        if s.poisoned {
            return Err(BarrierPoisoned);
        }
        s.arrived += 1;
        if s.arrived >= s.members {
            s.arrived = 0;
            s.epoch += 1;
            self.cvar.notify_all();
            return Ok(());
        }
        let epoch = s.epoch;
        while s.epoch == epoch && !s.poisoned {
            s = self.cvar.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        if s.poisoned && s.epoch == epoch {
            Err(BarrierPoisoned)
        } else {
            Ok(())
        }
    }

    /// Fail every current and future [`wait`](Self::wait) until
    /// [`reset`](Self::reset).
    pub fn poison(&self) {
        let mut s = self.lock();
        s.poisoned = true;
        self.cvar.notify_all();
    }

    /// Whether the barrier is currently poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned
    }

    /// Clear poison and any partial round, making the barrier usable again.
    ///
    /// Only sound once no thread is blocked in [`wait`](Self::wait) — in
    /// the runtime this holds after every worker of a failed run has
    /// reported back.
    pub fn reset(&self) {
        let mut s = self.lock();
        s.poisoned = false;
        s.arrived = 0;
        // Advance the epoch so a stale waiter (which cannot exist under the
        // documented protocol) would release rather than join a new round.
        s.epoch += 1;
        self.cvar.notify_all();
    }

    /// Permanently remove one member (worker loss).  If the current round
    /// is complete without the departed member, it is released.
    pub fn leave(&self) {
        let mut s = self.lock();
        assert!(s.members >= 1, "leave() without members");
        s.members -= 1;
        if s.members > 0 && s.arrived >= s.members {
            s.arrived = 0;
            s.epoch += 1;
            self.cvar.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn releases_all_members() {
        let b = Arc::new(EpochBarrier::new(4));
        let passed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                let passed = passed.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        b.wait().unwrap();
                    }
                    passed.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(passed.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn poison_unblocks_waiters() {
        let b = Arc::new(EpochBarrier::new(2));
        let waiter = {
            let b = b.clone();
            std::thread::spawn(move || b.wait())
        };
        std::thread::sleep(Duration::from_millis(20));
        b.poison();
        assert_eq!(waiter.join().unwrap(), Err(BarrierPoisoned));
        // Future waits fail fast until reset.
        assert_eq!(b.wait(), Err(BarrierPoisoned));
        b.reset();
        assert!(!b.is_poisoned());
    }

    #[test]
    fn reset_makes_barrier_reusable() {
        let b = Arc::new(EpochBarrier::new(3));
        b.poison();
        assert!(b.wait().is_err());
        b.reset();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let b = b.clone();
                s.spawn(move || b.wait().unwrap());
            }
        });
    }

    #[test]
    fn leave_releases_complete_round() {
        let b = Arc::new(EpochBarrier::new(3));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || b.wait())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        // Third member departs instead of arriving; the two waiters release.
        b.leave();
        for w in waiters {
            assert_eq!(w.join().unwrap(), Ok(()));
        }
        // The barrier now synchronises two members.
        std::thread::scope(|s| {
            for _ in 0..2 {
                let b = b.clone();
                s.spawn(move || b.wait().unwrap());
            }
        });
    }
}
