//! Presets for the three clusters of the paper's evaluation (§4.1).
//!
//! Peak per-core performance and node structure are taken directly from the
//! paper; interconnect latencies and bandwidths are the published
//! characteristics of the respective networks (SDR InfiniBand, NUMAlink 4,
//! QDR InfiniBand).  Absolute values only shift the simulated curves; the
//! *relations* between levels (intra-processor ≫ intra-node ≫ inter-node
//! bandwidth) are what drives every mapping effect the paper reports.

use crate::{ClusterSpec, LinkParams, SpeedProfile};

/// Chemnitz High Performance Linux (CHiC) cluster.
///
/// 530 nodes × 2 AMD Opteron 2218 dual-core processors @ 2.6 GHz
/// (5.2 GFlop/s per core), SDR InfiniBand interconnect
/// (~10 Gbit/s ≈ 1 GB/s payload, ~4 µs latency).
pub fn chic() -> ClusterSpec {
    ClusterSpec {
        name: "CHiC".into(),
        nodes: 530,
        processors_per_node: 2,
        cores_per_processor: 2,
        core_flops: 5.2e9,
        speed: SpeedProfile::uniform(),
        intra_processor: LinkParams {
            latency_s: 2.0e-7,
            bytes_per_s: 6.0e9,
        },
        intra_node: LinkParams {
            latency_s: 6.0e-7,
            bytes_per_s: 2.5e9,
        },
        inter_node: LinkParams {
            latency_s: 4.0e-6,
            bytes_per_s: 0.95e9,
        },
        nic_bytes_per_s: 0.95e9,
        shared_memory_across_nodes: false,
    }
}

/// One 128-node partition of the SGI Altix 4700.
///
/// Each node holds 2 Intel Itanium2 Montecito dual-core processors
/// @ 1.6 GHz (6.4 GFlop/s per core).  Nodes connect through NUMAlink 4
/// with 6.4 GB/s bidirectional bandwidth per link and very low latency;
/// the machine is a distributed shared memory system, so OpenMP threads may
/// span nodes (paper §4.7).
pub fn altix() -> ClusterSpec {
    ClusterSpec {
        name: "SGI-Altix".into(),
        nodes: 128,
        processors_per_node: 2,
        cores_per_processor: 2,
        core_flops: 6.4e9,
        speed: SpeedProfile::uniform(),
        intra_processor: LinkParams {
            latency_s: 1.5e-7,
            bytes_per_s: 6.5e9,
        },
        intra_node: LinkParams {
            latency_s: 4.0e-7,
            bytes_per_s: 4.0e9,
        },
        inter_node: LinkParams {
            latency_s: 1.2e-6,
            bytes_per_s: 3.2e9,
        },
        nic_bytes_per_s: 3.2e9,
        shared_memory_across_nodes: true,
    }
}

/// JuRoPA cluster at Jülich.
///
/// 2208 nodes × 2 Intel Xeon X5570 "Nehalem" quad-core processors
/// @ 2.93 GHz (11.72 GFlop/s per core), QDR InfiniBand
/// (~32 Gbit/s ≈ 3.2 GB/s payload, ~2 µs latency).
pub fn juropa() -> ClusterSpec {
    ClusterSpec {
        name: "JuRoPA".into(),
        nodes: 2208,
        processors_per_node: 2,
        cores_per_processor: 4,
        core_flops: 11.72e9,
        speed: SpeedProfile::uniform(),
        intra_processor: LinkParams {
            latency_s: 1.0e-7,
            bytes_per_s: 1.0e10,
        },
        intra_node: LinkParams {
            latency_s: 4.0e-7,
            bytes_per_s: 5.0e9,
        },
        inter_node: LinkParams {
            latency_s: 2.0e-6,
            bytes_per_s: 3.0e9,
        },
        nic_bytes_per_s: 3.0e9,
        shared_memory_across_nodes: false,
    }
}

/// A small two-node machine with two dual-core processors per node, as used
/// in the paper's illustrating figures (Fig. 1, Fig. 9–11); convenient for
/// unit tests and examples.
pub fn example_2x2x2() -> ClusterSpec {
    ClusterSpec {
        name: "example-2x2x2".into(),
        nodes: 2,
        processors_per_node: 2,
        cores_per_processor: 2,
        core_flops: 1.0e9,
        speed: SpeedProfile::uniform(),
        intra_processor: LinkParams {
            latency_s: 1.0e-7,
            bytes_per_s: 8.0e9,
        },
        intra_node: LinkParams {
            latency_s: 5.0e-7,
            bytes_per_s: 4.0e9,
        },
        inter_node: LinkParams {
            latency_s: 4.0e-6,
            bytes_per_s: 1.0e9,
        },
        nic_bytes_per_s: 1.0e9,
        shared_memory_across_nodes: false,
    }
}

/// Like [`example_2x2x2`] but with four nodes (the platform of Fig. 9–11).
pub fn example_4x2x2() -> ClusterSpec {
    let mut c = example_2x2x2();
    c.name = "example-4x2x2".into();
    c.nodes = 4;
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chic_matches_paper() {
        let c = chic();
        assert_eq!(c.cores_per_node(), 4);
        assert_eq!(c.total_cores(), 530 * 4);
        assert!((c.core_flops - 5.2e9).abs() < 1.0);
    }

    #[test]
    fn juropa_matches_paper() {
        let c = juropa();
        assert_eq!(c.cores_per_node(), 8);
        assert!((c.core_flops - 11.72e9).abs() < 1.0);
    }

    #[test]
    fn altix_allows_cross_node_threads() {
        assert!(altix().shared_memory_across_nodes);
        assert!(!chic().shared_memory_across_nodes);
        assert!(!juropa().shared_memory_across_nodes);
    }

    #[test]
    fn hierarchy_is_monotone() {
        for spec in [chic(), altix(), juropa()] {
            let probe = 1024.0 * 1024.0;
            assert!(
                spec.intra_processor.transfer_time(probe) < spec.intra_node.transfer_time(probe),
                "{}: processor link not faster than node link",
                spec.name
            );
            assert!(
                spec.intra_node.transfer_time(probe) < spec.inter_node.transfer_time(probe),
                "{}: node link not faster than network",
                spec.name
            );
        }
    }
}
