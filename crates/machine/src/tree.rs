//! Explicit architecture tree (paper Fig. 7).
//!
//! [`ClusterSpec`] answers all cost-model queries
//! arithmetically; this module materialises the tree itself for display,
//! debugging and for algorithms that want to walk the hierarchy (e.g. the
//! hybrid process-layout builder).

use crate::{ClusterSpec, CoreId};

/// A node of the architecture tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchNode {
    /// Root: the entire machine/partition `A`, with one child per node.
    Machine(Vec<ArchNode>),
    /// A compute node `N<id>`, with one child per processor.
    Node {
        id: usize,
        processors: Vec<ArchNode>,
    },
    /// A processor `P<id>`, with one child per core.
    Processor { id: usize, cores: Vec<ArchNode> },
    /// A leaf core `C` with its global [`CoreId`].
    Core { id: usize, global: CoreId },
}

impl ArchNode {
    /// Build the full tree for a cluster.
    pub fn from_spec(spec: &ClusterSpec) -> ArchNode {
        let nodes = (0..spec.nodes)
            .map(|n| ArchNode::Node {
                id: n,
                processors: (0..spec.processors_per_node)
                    .map(|p| ArchNode::Processor {
                        id: p,
                        cores: (0..spec.cores_per_processor)
                            .map(|c| ArchNode::Core {
                                id: c,
                                global: spec.core_at(crate::CoreLabel {
                                    node: n,
                                    processor: p,
                                    core: c,
                                }),
                            })
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        ArchNode::Machine(nodes)
    }

    /// Number of leaf cores below this tree node.
    pub fn leaf_count(&self) -> usize {
        match self {
            ArchNode::Machine(children) => children.iter().map(ArchNode::leaf_count).sum(),
            ArchNode::Node { processors, .. } => processors.iter().map(ArchNode::leaf_count).sum(),
            ArchNode::Processor { cores, .. } => cores.len(),
            ArchNode::Core { .. } => 1,
        }
    }

    /// Leaves in left-to-right order — this is exactly the *consecutive*
    /// physical core sequence of the paper's mapping step.
    pub fn leaves(&self) -> Vec<CoreId> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<CoreId>) {
        match self {
            ArchNode::Machine(children) => {
                children.iter().for_each(|c| c.collect_leaves(out));
            }
            ArchNode::Node { processors, .. } => {
                processors.iter().for_each(|c| c.collect_leaves(out));
            }
            ArchNode::Processor { cores, .. } => {
                cores.iter().for_each(|c| c.collect_leaves(out));
            }
            ArchNode::Core { global, .. } => out.push(*global),
        }
    }

    /// Render the tree with `A`/`N`/`P`/`C` labels as in the paper's Fig. 7.
    pub fn render(&self, spec: &ClusterSpec) -> String {
        let mut s = String::new();
        self.render_into(spec, 0, &mut s);
        s
    }

    fn render_into(&self, spec: &ClusterSpec, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        match self {
            ArchNode::Machine(children) => {
                let _ = writeln!(out, "{pad}A ({})", spec.name);
                children
                    .iter()
                    .for_each(|c| c.render_into(spec, depth + 1, out));
            }
            ArchNode::Node { id, processors } => {
                let _ = writeln!(out, "{pad}N{id}");
                processors
                    .iter()
                    .for_each(|c| c.render_into(spec, depth + 1, out));
            }
            ArchNode::Processor { id, cores } => {
                let _ = writeln!(out, "{pad}P{id}");
                cores
                    .iter()
                    .for_each(|c| c.render_into(spec, depth + 1, out));
            }
            ArchNode::Core { global, .. } => {
                let _ = writeln!(out, "{pad}C {}", spec.label(*global));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;

    #[test]
    fn tree_leaf_count_matches_spec() {
        let spec = platforms::example_4x2x2();
        let tree = ArchNode::from_spec(&spec);
        assert_eq!(tree.leaf_count(), spec.total_cores());
    }

    #[test]
    fn leaves_are_in_consecutive_order() {
        let spec = platforms::example_2x2x2();
        let tree = ArchNode::from_spec(&spec);
        let leaves = tree.leaves();
        let expect: Vec<_> = spec.all_cores().collect();
        assert_eq!(leaves, expect);
    }

    #[test]
    fn render_contains_labels() {
        let spec = platforms::example_2x2x2();
        let tree = ArchNode::from_spec(&spec);
        let text = tree.render(&spec);
        assert!(text.contains("N0"));
        assert!(text.contains("P1"));
        assert!(text.contains("C 1.1.1"));
    }
}
