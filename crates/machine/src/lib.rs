//! Hierarchical machine model for M-task scheduling and mapping.
//!
//! The paper models the target platform as a tree (its Fig. 7): the entire
//! architecture `A` is the root, compute nodes `N` are its children,
//! processors `P` are children of nodes and cores `C` are the leaves.  A leaf
//! is identified by the label `nid.pid.cid`.  Interconnect speed differs per
//! tree level: cores of the same processor communicate faster than cores on
//! different processors of the same node, which communicate faster than cores
//! on different nodes.
//!
//! This crate provides:
//!
//! * [`ClusterSpec`] — a regular (homogeneous) cluster description with
//!   per-level [`LinkParams`] and per-core compute speed,
//! * [`CoreId`] / [`CoreLabel`] — global core indices and their tree labels,
//! * [`CommLevel`] — the lowest-common-ancestor level of a core pair, which
//!   determines the link parameters used for a message between them,
//! * [`platforms`] — presets for the three clusters of the paper's
//!   evaluation (CHiC, SGI Altix, JuRoPA).

pub mod platforms;
pub mod tree;

use serde::{Deserialize, Serialize};

/// Global index of a physical core, in `0..cluster.total_cores()`.
///
/// Core `k` has label `nid.pid.cid` with `nid = k / cores_per_node`, etc.;
/// i.e. the natural enumeration is the *consecutive* order of the paper's
/// §3.4 (all cores of node 0 first, within a node all cores of processor 0
/// first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

impl CoreId {
    /// The raw global index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Tree label `nid.pid.cid` of a core (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreLabel {
    /// Compute-node id.
    pub node: usize,
    /// Processor (socket) id within the node.
    pub processor: usize,
    /// Core id within the processor.
    pub core: usize,
}

impl std::fmt::Display for CoreLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}", self.node, self.processor, self.core)
    }
}

/// The lowest-common-ancestor level of a pair of cores.
///
/// A message between two cores travels over the interconnect of the deepest
/// tree level that still contains both cores; the level therefore selects the
/// [`LinkParams`] used by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommLevel {
    /// The two endpoints are the same core (no transfer needed).
    SameCore,
    /// Different cores of the same processor (shared cache / on-die).
    SameProcessor,
    /// Different processors of the same node (shared memory / front-side bus).
    SameNode,
    /// Different nodes (cluster interconnection network).
    CrossNode,
}

/// Latency/bandwidth parameters of one interconnect level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Startup time (latency) of a transfer in seconds.
    pub latency_s: f64,
    /// Sustained point-to-point bandwidth in bytes per second.
    pub bytes_per_s: f64,
}

impl LinkParams {
    /// Time to move `bytes` over this link once: `latency + bytes / bandwidth`.
    #[inline]
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / self.bytes_per_s
    }
}

/// Multiplicative per-node and per-core compute speed factors.
///
/// The paper's platforms are homogeneous, but shared production pools are
/// not: nodes of different generations coexist, and cores within a node may
/// be clocked down.  A profile stores a factor per node and a factor per
/// core-within-a-node; the effective speed of a core is the product of the
/// two.  A factor of `1.0` means "nominal speed" (`core_flops`), `0.5`
/// means the core computes at half that rate.
///
/// Internally the factor vectors are *normalized*: an all-`1.0` vector is
/// stored as the empty vector, so structurally a `uniform()` profile
/// compares (and hashes) equal no matter how it was built, and the
/// homogeneous fast paths can key off [`is_uniform`](Self::is_uniform).
/// Missing entries (node index beyond the vector) read as `1.0`, which
/// makes profiles robust under [`ClusterSpec::with_nodes`] resizing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedProfile {
    /// Per-node factor (`[]` ≡ all nodes at `1.0`).
    node_factors: Vec<f64>,
    /// Per-core-within-node factor (`[]` ≡ all cores at `1.0`).
    core_factors: Vec<f64>,
}

impl SpeedProfile {
    /// The homogeneous profile: every core at nominal speed.
    pub fn uniform() -> SpeedProfile {
        SpeedProfile {
            node_factors: Vec::new(),
            core_factors: Vec::new(),
        }
    }

    /// Profile with explicit per-node factors (cores within a node stay
    /// uniform).  Factors must be finite and positive.
    pub fn with_node_factors(factors: Vec<f64>) -> SpeedProfile {
        SpeedProfile {
            node_factors: normalize(factors),
            core_factors: Vec::new(),
        }
    }

    /// Profile with explicit per-core-within-node factors (e.g. one slow
    /// efficiency core per node).
    pub fn with_core_factors(factors: Vec<f64>) -> SpeedProfile {
        SpeedProfile {
            node_factors: Vec::new(),
            core_factors: normalize(factors),
        }
    }

    /// `true` iff every core runs at nominal speed.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.node_factors.is_empty() && self.core_factors.is_empty()
    }

    /// Speed factor of node `n` (missing entries read as `1.0`).
    #[inline]
    pub fn node_factor(&self, n: usize) -> f64 {
        self.node_factors.get(n).copied().unwrap_or(1.0)
    }

    /// Speed factor of core `c` within its node (missing entries read as
    /// `1.0`).
    #[inline]
    pub fn core_factor(&self, c: usize) -> f64 {
        self.core_factors.get(c).copied().unwrap_or(1.0)
    }

    /// The stored per-node factors (normalized: empty means uniform).
    pub fn node_factors(&self) -> &[f64] {
        &self.node_factors
    }

    /// The stored per-core-within-node factors (normalized: empty means
    /// uniform).
    pub fn core_factors(&self) -> &[f64] {
        &self.core_factors
    }

    /// Restrict the profile to the first `nodes` nodes, re-normalizing so
    /// a now-homogeneous remainder reads as uniform again.
    pub fn truncated(&self, nodes: usize) -> SpeedProfile {
        let mut nf = self.node_factors.clone();
        nf.truncate(nodes);
        SpeedProfile {
            node_factors: normalize(nf),
            core_factors: self.core_factors.clone(),
        }
    }
}

/// Drop trailing (and all-) `1.0` factors so equal profiles are equal
/// vectors; rejects non-positive or non-finite factors.
fn normalize(mut factors: Vec<f64>) -> Vec<f64> {
    for &f in &factors {
        assert!(
            f.is_finite() && f > 0.0,
            "speed factors must be finite and positive, got {f}"
        );
    }
    while factors.last() == Some(&1.0) {
        factors.pop();
    }
    factors
}

/// Description of a regular hierarchical cluster.
///
/// All nodes have the same processor count and all processors the same core
/// count, matching the platforms of the paper's evaluation.  Interconnect
/// heterogeneity enters through the three [`LinkParams`] levels, which
/// differ by an order of magnitude or more on real machines; *compute*
/// heterogeneity enters through the optional [`SpeedProfile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable platform name (e.g. `"CHiC"`).
    pub name: String,
    /// Number of compute nodes.
    pub nodes: usize,
    /// Processors (sockets) per node.
    pub processors_per_node: usize,
    /// Cores per processor.
    pub cores_per_processor: usize,
    /// Peak performance of a single core in floating-point operations per
    /// second; used to convert a task's sequential work into seconds.
    pub core_flops: f64,
    /// Per-node / per-core multiplicative speed factors on top of
    /// `core_flops` ([`SpeedProfile::uniform`] for the paper's homogeneous
    /// platforms).
    pub speed: SpeedProfile,
    /// Link parameters between cores of the same processor.
    pub intra_processor: LinkParams,
    /// Link parameters between processors of the same node.
    pub intra_node: LinkParams,
    /// Link parameters between nodes.
    pub inter_node: LinkParams,
    /// Aggregate NIC bandwidth of one node in bytes per second.  Concurrent
    /// flows entering/leaving a node share this; the cost model derives a
    /// contention factor from it.
    pub nic_bytes_per_s: f64,
    /// Whether threads may span nodes (true only for distributed shared
    /// memory systems such as the SGI Altix, paper §4.7).
    pub shared_memory_across_nodes: bool,
}

impl ClusterSpec {
    /// Cores per node (`processors_per_node * cores_per_processor`).
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.processors_per_node * self.cores_per_processor
    }

    /// Total number of cores of the machine (the paper's `P`).
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// The tree label of a core.
    #[inline]
    pub fn label(&self, core: CoreId) -> CoreLabel {
        let cpn = self.cores_per_node();
        debug_assert!(core.0 < self.total_cores(), "core {core:?} out of range");
        let node = core.0 / cpn;
        let within = core.0 % cpn;
        CoreLabel {
            node,
            processor: within / self.cores_per_processor,
            core: within % self.cores_per_processor,
        }
    }

    /// The global core index of a tree label.
    #[inline]
    pub fn core_at(&self, label: CoreLabel) -> CoreId {
        CoreId(
            label.node * self.cores_per_node()
                + label.processor * self.cores_per_processor
                + label.core,
        )
    }

    /// Lowest-common-ancestor level of a pair of cores.
    #[inline]
    pub fn level(&self, a: CoreId, b: CoreId) -> CommLevel {
        if a == b {
            return CommLevel::SameCore;
        }
        let la = self.label(a);
        let lb = self.label(b);
        if la.node != lb.node {
            CommLevel::CrossNode
        } else if la.processor != lb.processor {
            CommLevel::SameNode
        } else {
            CommLevel::SameProcessor
        }
    }

    /// Link parameters for a message between two cores.
    ///
    /// `SameCore` transfers are modelled as a same-processor copy; callers
    /// that want them free should special-case `a == b`.
    #[inline]
    pub fn link(&self, a: CoreId, b: CoreId) -> LinkParams {
        match self.level(a, b) {
            CommLevel::SameCore | CommLevel::SameProcessor => self.intra_processor,
            CommLevel::SameNode => self.intra_node,
            CommLevel::CrossNode => self.inter_node,
        }
    }

    /// Link parameters of a given level.
    #[inline]
    pub fn link_at(&self, level: CommLevel) -> LinkParams {
        match level {
            CommLevel::SameCore | CommLevel::SameProcessor => self.intra_processor,
            CommLevel::SameNode => self.intra_node,
            CommLevel::CrossNode => self.inter_node,
        }
    }

    /// The slowest link of the machine; used for the default mapping pattern
    /// `dmp` of the scheduling step (paper §3.2), which charges all internal
    /// communication of a task at the slowest level so that `Tsymb(M, p)` is
    /// an upper bound of the real execution time.
    #[inline]
    pub fn slowest_link(&self) -> LinkParams {
        // Monotone hierarchies have the inter-node link slowest; guard
        // against exotic configurations by comparing transfer times for a
        // representative message.
        let probe = 64.0 * 1024.0;
        let mut worst = self.intra_processor;
        for cand in [self.intra_node, self.inter_node] {
            if cand.transfer_time(probe) > worst.transfer_time(probe) {
                worst = cand;
            }
        }
        worst
    }

    /// Enumerate all cores in consecutive label order.
    pub fn all_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.total_cores()).map(CoreId)
    }

    /// Restrict the spec to the first `nodes` nodes (the paper's benchmarks
    /// use sub-partitions of each machine).
    pub fn with_nodes(&self, nodes: usize) -> ClusterSpec {
        assert!(nodes >= 1, "cluster needs at least one node");
        ClusterSpec {
            nodes,
            speed: self.speed.truncated(nodes),
            ..self.clone()
        }
    }

    /// A sub-machine with exactly `cores` cores, using as few whole nodes as
    /// possible.  Panics if `cores` is not a multiple of the node width or
    /// exceeds the machine.
    pub fn with_cores(&self, cores: usize) -> ClusterSpec {
        let cpn = self.cores_per_node();
        assert!(
            cores.is_multiple_of(cpn),
            "{cores} cores is not a whole number of {cpn}-core nodes"
        );
        let nodes = cores / cpn;
        assert!(nodes <= self.nodes, "machine has only {} nodes", self.nodes);
        self.with_nodes(nodes)
    }

    /// Seconds of compute time for `flops` floating point operations on one
    /// *nominal-speed* core.
    #[inline]
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.core_flops
    }

    /// `true` iff every core of this machine runs at nominal speed.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.speed.is_uniform()
    }

    /// Effective speed factor of a specific core: the product of its node
    /// and within-node factors (`1.0` on homogeneous machines).
    #[inline]
    pub fn core_speed(&self, core: CoreId) -> f64 {
        if self.speed.is_uniform() {
            return 1.0;
        }
        let label = self.label(core);
        self.speed.node_factor(label.node)
            * self
                .speed
                .core_factor(label.processor * self.cores_per_processor + label.core)
    }

    /// Seconds of compute time for `flops` floating point operations on a
    /// *specific* core — [`compute_time`](Self::compute_time) scaled by the
    /// core's speed factor.
    #[inline]
    pub fn compute_time_at(&self, core: CoreId, flops: f64) -> f64 {
        let t = self.compute_time(flops);
        if self.speed.is_uniform() {
            t
        } else {
            t / self.core_speed(core)
        }
    }

    /// The same machine with a different speed profile.
    pub fn with_speed(&self, speed: SpeedProfile) -> ClusterSpec {
        let mut out = self.clone();
        out.speed = speed;
        out
    }

    /// A 2-class variant of this machine: the *last* `count` nodes run at
    /// `factor` × nominal speed (taking the tail keeps core `0..k` prefixes
    /// — the common symbolic ranges — on fast nodes, so the contrast with
    /// the blind scheduler comes from placement, not from luck).
    pub fn with_slow_nodes(&self, count: usize, factor: f64) -> ClusterSpec {
        assert!(count <= self.nodes, "machine has only {} nodes", self.nodes);
        let mut nf = vec![1.0; self.nodes];
        for f in nf.iter_mut().skip(self.nodes - count) {
            *f = factor;
        }
        let mut out = self.clone();
        out.speed = SpeedProfile {
            node_factors: normalize(nf),
            core_factors: self.speed.core_factors.clone(),
        };
        out
    }

    /// The distinct core speeds of the machine, descending (fastest first).
    /// Homogeneous machines have exactly one class, `[1.0]`.
    pub fn speed_classes(&self) -> Vec<f64> {
        if self.speed.is_uniform() {
            return vec![1.0];
        }
        let mut speeds: Vec<f64> = self.all_cores().map(|c| self.core_speed(c)).collect();
        speeds.sort_by(|a, b| b.total_cmp(a));
        speeds.dedup_by(|a, b| a.to_bits() == b.to_bits());
        speeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ClusterSpec {
        ClusterSpec {
            name: "toy".into(),
            nodes: 4,
            processors_per_node: 2,
            cores_per_processor: 2,
            core_flops: 1e9,
            speed: SpeedProfile::uniform(),
            intra_processor: LinkParams {
                latency_s: 1e-7,
                bytes_per_s: 8e9,
            },
            intra_node: LinkParams {
                latency_s: 5e-7,
                bytes_per_s: 4e9,
            },
            inter_node: LinkParams {
                latency_s: 4e-6,
                bytes_per_s: 1e9,
            },
            nic_bytes_per_s: 1e9,
            shared_memory_across_nodes: false,
        }
    }

    #[test]
    fn counts() {
        let c = toy();
        assert_eq!(c.cores_per_node(), 4);
        assert_eq!(c.total_cores(), 16);
    }

    #[test]
    fn labels_round_trip() {
        let c = toy();
        for k in 0..c.total_cores() {
            let id = CoreId(k);
            let label = c.label(id);
            assert_eq!(c.core_at(label), id);
        }
    }

    #[test]
    fn label_layout_is_consecutive() {
        let c = toy();
        // Core 0..4 on node 0, 4..8 on node 1, ...
        assert_eq!(
            c.label(CoreId(0)),
            CoreLabel {
                node: 0,
                processor: 0,
                core: 0
            }
        );
        assert_eq!(
            c.label(CoreId(1)),
            CoreLabel {
                node: 0,
                processor: 0,
                core: 1
            }
        );
        assert_eq!(
            c.label(CoreId(2)),
            CoreLabel {
                node: 0,
                processor: 1,
                core: 0
            }
        );
        assert_eq!(
            c.label(CoreId(5)),
            CoreLabel {
                node: 1,
                processor: 0,
                core: 1
            }
        );
    }

    #[test]
    fn levels() {
        let c = toy();
        assert_eq!(c.level(CoreId(0), CoreId(0)), CommLevel::SameCore);
        assert_eq!(c.level(CoreId(0), CoreId(1)), CommLevel::SameProcessor);
        assert_eq!(c.level(CoreId(0), CoreId(2)), CommLevel::SameNode);
        assert_eq!(c.level(CoreId(0), CoreId(4)), CommLevel::CrossNode);
    }

    #[test]
    fn slowest_link_is_inter_node() {
        let c = toy();
        assert_eq!(c.slowest_link(), c.inter_node);
    }

    #[test]
    fn with_cores_shrinks_nodes() {
        let c = toy().with_cores(8);
        assert_eq!(c.nodes, 2);
        assert_eq!(c.total_cores(), 8);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn with_cores_rejects_partial_nodes() {
        toy().with_cores(6);
    }

    #[test]
    fn uniform_profile_is_normal_form() {
        // Any all-1.0 construction collapses to the canonical uniform
        // profile, so structural equality and hashing see one value.
        assert_eq!(
            SpeedProfile::with_node_factors(vec![1.0; 7]),
            SpeedProfile::uniform()
        );
        assert_eq!(
            SpeedProfile::with_core_factors(vec![1.0, 1.0]),
            SpeedProfile::uniform()
        );
        assert!(toy().is_uniform());
        assert_eq!(toy().speed_classes(), vec![1.0]);
        for c in toy().all_cores() {
            assert_eq!(toy().core_speed(c), 1.0);
        }
    }

    #[test]
    fn slow_nodes_mark_the_tail() {
        let c = toy().with_slow_nodes(2, 0.5);
        assert!(!c.is_uniform());
        // Nodes 0,1 nominal; nodes 2,3 at half speed.
        assert_eq!(c.core_speed(CoreId(0)), 1.0);
        assert_eq!(c.core_speed(CoreId(7)), 1.0);
        assert_eq!(c.core_speed(CoreId(8)), 0.5);
        assert_eq!(c.core_speed(CoreId(15)), 0.5);
        assert_eq!(c.speed_classes(), vec![1.0, 0.5]);
        // Compute time doubles on a slow core.
        let nominal = c.compute_time(1e9);
        assert_eq!(
            c.compute_time_at(CoreId(0), 1e9).to_bits(),
            nominal.to_bits()
        );
        assert!((c.compute_time_at(CoreId(8), 1e9) - 2.0 * nominal).abs() < 1e-12);
    }

    #[test]
    fn node_and_core_factors_multiply() {
        let mut c = toy();
        c.speed = SpeedProfile {
            node_factors: vec![1.0, 0.5],
            core_factors: vec![1.0, 1.0, 1.0, 0.5],
        };
        // Node 1, last core of the node: both factors apply.
        assert_eq!(c.core_speed(CoreId(7)), 0.25);
        // Node 2 (beyond node_factors): node factor reads 1.0.
        assert_eq!(c.core_speed(CoreId(11)), 0.5);
        assert_eq!(c.speed_classes(), vec![1.0, 0.5, 0.25]);
    }

    #[test]
    fn with_nodes_renormalizes_the_profile() {
        // Slow tail dropped by the resize: the sub-machine is uniform again.
        let c = toy().with_slow_nodes(1, 0.5).with_nodes(3);
        assert!(c.is_uniform());
        let d = toy().with_slow_nodes(2, 0.5).with_nodes(3);
        assert!(!d.is_uniform());
        assert_eq!(d.core_speed(CoreId(8)), 0.5);
    }

    #[test]
    fn transfer_time_is_affine() {
        let l = LinkParams {
            latency_s: 1e-6,
            bytes_per_s: 1e9,
        };
        assert!((l.transfer_time(0.0) - 1e-6).abs() < 1e-15);
        assert!((l.transfer_time(1e9) - (1e-6 + 1.0)).abs() < 1e-9);
    }
}
