//! The admission / sizing oracle: predicted running time T(w) of a job on
//! a `w`-core allotment, computed by the paper's own pipeline — layer
//! scheduler → consecutive mapping → simulator — and widened by the
//! observed prediction error (pt-obs reconciliation slack), so admission
//! promises hold to the extent the cost model has been validated.
//!
//! Cost tables are warm across allotments: one [`TableStore`] per distinct
//! graph, sized to the whole machine, serves every width the policies
//! probe, so re-sizing a job re-prices only the `(task, width)` pairs never
//! seen before.  The T(w) curve itself is memoized per (graph, width).

use crate::job::JobSpec;
use pt_core::{LayerScheduler, MappingStrategy};
use pt_cost::{CostModel, CostTable, TableStore};
use pt_sim::Simulator;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-graph warm state: the shared table store plus the memoized curve.
struct GraphCache {
    store: Arc<TableStore>,
    /// width → raw predicted seconds (no slack).
    t_of_w: HashMap<usize, f64>,
}

/// Predicts T(job, width) with reconciliation-derived slack.  Interior
/// mutability: policies and simulators share one oracle immutably.
pub struct AdmissionOracle<'a> {
    model: &'a CostModel<'a>,
    slack: f64,
    graphs: Mutex<HashMap<usize, GraphCache>>,
    /// Scheduling pipeline invocations (oracle cache misses).
    misses: std::sync::atomic::AtomicUsize,
}

impl<'a> AdmissionOracle<'a> {
    /// Oracle over `model`'s machine with the default slack of a
    /// never-reconciled model (2.0, matching
    /// [`Reconciliation::suggested_slack`](pt_obs::Reconciliation::suggested_slack)
    /// on an empty report).
    pub fn new(model: &'a CostModel<'a>) -> AdmissionOracle<'a> {
        AdmissionOracle {
            model,
            slack: 2.0,
            graphs: Mutex::new(HashMap::new()),
            misses: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Override the slack factor (clamped to the reconciliation range
    /// [1.25, 8]).
    pub fn with_slack(mut self, slack: f64) -> AdmissionOracle<'a> {
        self.slack = slack.clamp(1.25, 8.0);
        self
    }

    /// Derive the slack from an observed prediction-error report.
    pub fn with_reconciliation(self, rec: &pt_obs::Reconciliation) -> AdmissionOracle<'a> {
        let s = rec.suggested_slack();
        self.with_slack(s)
    }

    /// The machine's total core count (the widest allotment).
    pub fn total_cores(&self) -> usize {
        self.model.spec.total_cores()
    }

    /// The slack factor applied by [`predict`](Self::predict).
    pub fn slack(&self) -> f64 {
        self.slack
    }

    /// Scheduling-pipeline invocations so far (memo misses).
    pub fn evaluations(&self) -> usize {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Raw predicted running time of `job` on `width` cores (seconds), no
    /// slack: schedule the graph onto `width` symbolic cores through the
    /// graph's warm cost table, map consecutively, simulate.
    pub fn predict_raw(&self, job: &JobSpec, width: usize) -> f64 {
        let total = self.total_cores();
        assert!(
            width >= 1 && width <= total,
            "width {width} outside 1..={total}"
        );
        let key = job.graph_key();
        let store = {
            let mut graphs = self.graphs.lock().expect("oracle cache lock");
            let cache = graphs.entry(key).or_insert_with(|| GraphCache {
                store: Arc::new(TableStore::with_classes(
                    job.graph.len(),
                    total,
                    self.model.num_classes(),
                )),
                t_of_w: HashMap::new(),
            });
            if let Some(&t) = cache.t_of_w.get(&width) {
                return t;
            }
            cache.store.clone()
        };
        // Compute outside the lock: the store is internally synchronized,
        // and concurrent probes of the same width both write the same value.
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let table = CostTable::shared(self.model, store);
        let sched = LayerScheduler::new(self.model).schedule_on_with(&table, &job.graph, width);
        let mapping = MappingStrategy::Consecutive.mapping(self.model.spec, width);
        let t = Simulator::new(self.model)
            .simulate_layered(&job.graph, &sched, &mapping)
            .makespan;
        self.graphs
            .lock()
            .expect("oracle cache lock")
            .get_mut(&key)
            .expect("entry inserted above")
            .t_of_w
            .insert(width, t);
        t
    }

    /// Slack-widened prediction — the admission-facing bound.
    pub fn predict(&self, job: &JobSpec, width: usize) -> f64 {
        self.predict_raw(job, width) * self.slack
    }

    /// Would `job` on `width` cores finish within `budget` seconds, by the
    /// slack-widened bound?
    pub fn admit(&self, job: &JobSpec, width: usize, budget: f64) -> bool {
        self.predict(job, width) <= budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::WorkloadKind;
    use pt_machine::platforms;

    #[test]
    fn memo_and_warm_tables_absorb_repeat_probes() {
        let spec = platforms::chic().with_nodes(4);
        let model = CostModel::new(&spec);
        let oracle = AdmissionOracle::new(&model);
        let job = JobSpec::new(0, "epol#0", WorkloadKind::Epol.graph(), 0.0);

        let t8 = oracle.predict_raw(&job, 8);
        let after_first = oracle.evaluations();
        assert!(t8 > 0.0 && t8.is_finite());
        // Same (graph, width) again: memo hit, no new pipeline run.
        let t8b = oracle.predict_raw(&job, 8);
        assert_eq!(t8.to_bits(), t8b.to_bits());
        assert_eq!(oracle.evaluations(), after_first);

        // A different job of the same kind shares the curve outright.
        let job2 = JobSpec::new(1, "epol#1", WorkloadKind::Epol.graph(), 3.0);
        let t8c = oracle.predict_raw(&job2, 8);
        assert_eq!(t8.to_bits(), t8c.to_bits());
        assert_eq!(oracle.evaluations(), after_first);
    }

    #[test]
    fn more_cores_never_hurt_much_and_slack_scales() {
        let spec = platforms::chic().with_nodes(4);
        let model = CostModel::new(&spec);
        let oracle = AdmissionOracle::new(&model).with_slack(1.25);
        let job = JobSpec::new(0, "bt#0", WorkloadKind::BtMz.graph(), 0.0);
        let t1 = oracle.predict_raw(&job, 1);
        let t16 = oracle.predict_raw(&job, 16);
        assert!(
            t16 < t1,
            "16 cores ({t16}s) should beat 1 core ({t1}s) on BT-MZ"
        );
        let bound = oracle.predict(&job, 16);
        assert!((bound - t16 * 1.25).abs() < 1e-12);
        assert!(oracle.admit(&job, 16, bound));
        assert!(!oracle.admit(&job, 16, bound * 0.5));
    }
}
