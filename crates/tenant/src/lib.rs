//! Online multi-tenant scheduling over the M-task stack.
//!
//! The paper schedules one application onto a dedicated machine.  This
//! crate models the operational setting around that: jobs — mixed
//! EPOL/IRK/BT-MZ M-task applications — *arrive over time* (Poisson or
//! trace-driven, [`arrivals`]), a policy decides admission and core
//! allotments against the live platform ([`policy`]), and running jobs are
//! **malleable**: shrunk to admit newcomers and regrown when capacity
//! frees, with the width change applied at a layer boundary (`pt-exec`'s
//! `ResizeHandle` inside a run, [`pt_exec::replan`] between gang slices).
//!
//! Components:
//!
//! * [`JobSpec`] — a job: graph + arrival + malleable floor.
//! * [`AdmissionOracle`] — predicted T(job, width) through the paper's own
//!   pipeline (layer scheduler → mapping → simulator), slack-widened by
//!   the pt-obs reconciliation error, with warm cost tables shared across
//!   allotments and jobs of the same kind.
//! * [`Policy`] — FCFS-exclusive and equipartition baselines, and the
//!   malleable floors-plus-water-filling policy.
//! * [`run_scenario`] — deterministic event-driven scenario simulation
//!   producing makespan / stretch / utilization figures per policy.
//! * [`TenantExecutor`] — real execution: round-robin gang timesharing of
//!   several programs on one worker pool, each with a private store,
//!   widths re-planned between slices.

pub mod arrivals;
pub mod executor;
pub mod job;
pub mod oracle;
pub mod policy;
pub mod sim;

pub use arrivals::{poisson_arrivals, poisson_mixed, trace_jobs, WorkloadKind};
pub use executor::{TenantExecutor, TenantJob, TenantRun};
pub use job::JobSpec;
pub use oracle::AdmissionOracle;
pub use policy::Policy;
pub use sim::{run_scenario, JobOutcome, ScenarioReport, TenantSimConfig};
