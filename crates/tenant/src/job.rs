//! Job identity for the multi-tenant layer: an M-task graph plus the
//! tenancy metadata the policies decide over.

use pt_mtask::TaskGraph;
use std::sync::Arc;

/// One submitted job: a moldable M-task application arriving at a point in
/// time, malleable between `min_width` and the whole machine.
///
/// The graph is shared by `Arc` on purpose: jobs built from the same
/// workload template point at the *same* graph, so the admission oracle's
/// warm cost tables and memoized running-time curve are reused across every
/// job of that kind (a mixed Poisson stream has a handful of kinds and many
/// jobs).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Stream-unique id (assigned by the arrival generator / caller).
    pub id: usize,
    /// Display name, e.g. `epol#3`.
    pub name: String,
    /// The application's M-task graph.
    pub graph: Arc<TaskGraph>,
    /// Arrival time in seconds since scenario start.
    pub arrival: f64,
    /// Smallest allotment the job accepts (malleable floor, ≥ 1).
    pub min_width: usize,
    /// Stretch weight (1.0 = unweighted).
    pub weight: f64,
}

impl JobSpec {
    /// A job with defaults (`min_width` 1, `weight` 1).
    pub fn new(id: usize, name: impl Into<String>, graph: Arc<TaskGraph>, arrival: f64) -> JobSpec {
        JobSpec {
            id,
            name: name.into(),
            graph,
            arrival,
            min_width: 1,
            weight: 1.0,
        }
    }

    /// Set the malleable floor.
    pub fn with_min_width(mut self, w: usize) -> JobSpec {
        assert!(w >= 1, "min_width must be at least 1");
        self.min_width = w;
        self
    }

    /// Key identifying the job's graph for oracle caching: jobs sharing a
    /// graph `Arc` share warm cost tables and the memoized T(w) curve.
    pub fn graph_key(&self) -> usize {
        Arc::as_ptr(&self.graph) as *const () as usize
    }
}
