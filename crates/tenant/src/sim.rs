//! Event-driven scenario simulation of an online job stream under a
//! [`Policy`].
//!
//! Jobs are fluid: a job allotted `w` cores progresses at rate `1/T(w)`
//! per second, with `T(w)` from the [`AdmissionOracle`]'s raw prediction
//! (the oracle *is* the world model here — what the scenario compares is
//! policies, not prediction error, which the slack factor covers at
//! admission time).  Allotments are recomputed at every arrival and
//! completion; a width change of a running job charges
//! [`TenantSimConfig::resize_penalty`] seconds of paused progress, the
//! modeled cost of the executor's boundary shrink/regrow (snapshot, replan,
//! re-entry — see `pt-exec`'s `ResizeHandle`).
//!
//! Reported figures:
//! * **makespan** — last finish time of the batch;
//! * **stretch** — per job, `(finish − arrival) / T(P)`: response time in
//!   units of the job's exclusive whole-machine run;
//! * **utilization** — `Σ_j T_j(1) / (P × makespan)`: useful sequential
//!   core-seconds over available core-seconds.  The numerator is
//!   policy-invariant, so utilization ranks policies exactly by batch span
//!   — a policy wins by finishing the same work earlier, never by padding.

use crate::job::JobSpec;
use crate::oracle::AdmissionOracle;
use crate::policy::Policy;
use serde::Serialize;

/// Scenario-level knobs.
#[derive(Debug, Clone)]
pub struct TenantSimConfig {
    /// Seconds of paused progress charged to a running job whose width
    /// changes (the boundary snapshot + replan + re-entry cost).
    pub resize_penalty: f64,
}

impl Default for TenantSimConfig {
    fn default() -> Self {
        TenantSimConfig {
            resize_penalty: 1e-3,
        }
    }
}

/// One job's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct JobOutcome {
    /// Stream id.
    pub id: usize,
    /// Display name.
    pub name: String,
    /// Arrival time (s).
    pub arrival: f64,
    /// First time the job held cores (s).
    pub start: f64,
    /// Completion time (s).
    pub finish: f64,
    /// Exclusive whole-machine running time T(P) (s, raw prediction).
    pub t_exclusive: f64,
    /// Sequential running time T(1) (s, raw prediction).
    pub t_serial: f64,
    /// `(finish − arrival) / t_exclusive`.
    pub stretch: f64,
    /// Width changes applied while running.
    pub resizes: usize,
}

/// Aggregate scenario outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Policy display name.
    pub policy: String,
    /// Machine width the scenario ran on.
    pub total_cores: usize,
    /// Last finish time (s).
    pub makespan: f64,
    /// Mean of per-job stretches.
    pub mean_stretch: f64,
    /// Worst per-job stretch.
    pub max_stretch: f64,
    /// `Σ T(1) / (P × makespan)`.
    pub utilization: f64,
    /// Total width changes applied to running jobs.
    pub resizes: usize,
    /// Oracle pipeline invocations consumed by the scenario so far.
    pub oracle_evaluations: usize,
    /// Per-job rows, by id.
    pub jobs: Vec<JobOutcome>,
}

/// Completion tolerance on the unit of work.
const EPS: f64 = 1e-9;

struct Live {
    /// Index into the sorted job list.
    job: usize,
    /// Work left, 1.0 → 0.0.
    remaining: f64,
    width: usize,
    started: Option<f64>,
    /// Progress is frozen until this instant (resize penalty).
    paused_until: f64,
    resizes: usize,
}

/// Run `jobs` under `policy` and report.  Deterministic: identical inputs
/// give a bit-identical report.
pub fn run_scenario(
    oracle: &AdmissionOracle<'_>,
    jobs: &[JobSpec],
    policy: Policy,
    cfg: &TenantSimConfig,
) -> ScenarioReport {
    let total = oracle.total_cores();
    // Arrival order, stable on id.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .arrival
            .total_cmp(&jobs[b].arrival)
            .then(jobs[a].id.cmp(&jobs[b].id))
    });

    let mut t = 0.0f64;
    let mut next_arrival = 0usize; // index into `order`
    let mut active: Vec<Live> = Vec::new();
    let mut outcomes: Vec<Option<JobOutcome>> = (0..jobs.len()).map(|_| None).collect();

    while next_arrival < order.len() || !active.is_empty() {
        // Nothing running: jump to the next arrival.
        if active.is_empty() {
            let j = order[next_arrival];
            t = t.max(jobs[j].arrival);
            while next_arrival < order.len() && jobs[order[next_arrival]].arrival <= t {
                active.push(Live {
                    job: order[next_arrival],
                    remaining: 1.0,
                    width: 0,
                    started: None,
                    paused_until: 0.0,
                    resizes: 0,
                });
                next_arrival += 1;
            }
        }

        // Decide allotments for the present jobs.
        let refs: Vec<&JobSpec> = active.iter().map(|l| &jobs[l.job]).collect();
        let widths = policy.allocate(&refs, oracle, total);
        for (l, &w) in active.iter_mut().zip(&widths) {
            if w != l.width {
                if l.width > 0 && w > 0 {
                    // A running job changed width: boundary resize.
                    l.resizes += 1;
                    l.paused_until = t + cfg.resize_penalty;
                }
                l.width = w;
            }
            if w > 0 && l.started.is_none() {
                l.started = Some(t);
            }
        }

        // Earliest next event: an arrival or a completion.
        let mut t_next = (next_arrival < order.len()).then(|| jobs[order[next_arrival]].arrival);
        for l in &active {
            if l.width == 0 {
                continue;
            }
            let t_w = oracle.predict_raw(&jobs[l.job], l.width);
            let resume = l.paused_until.max(t);
            let fin = resume + l.remaining * t_w;
            t_next = Some(t_next.map_or(fin, |x: f64| x.min(fin)));
        }
        let t_next = t_next.expect("active or pending jobs imply a next event");

        // Advance fluid progress to t_next.
        for l in active.iter_mut() {
            if l.width == 0 {
                continue;
            }
            let t_w = oracle.predict_raw(&jobs[l.job], l.width);
            let eff = (t_next - l.paused_until.max(t)).max(0.0);
            l.remaining -= eff / t_w;
        }
        t = t_next;

        // Record completions.
        active.retain(|l| {
            if l.remaining > EPS {
                return true;
            }
            let job = &jobs[l.job];
            let t_exclusive = oracle.predict_raw(job, total);
            let t_serial = oracle.predict_raw(job, 1);
            outcomes[l.job] = Some(JobOutcome {
                id: job.id,
                name: job.name.clone(),
                arrival: job.arrival,
                start: l.started.unwrap_or(job.arrival),
                finish: t,
                t_exclusive,
                t_serial,
                stretch: (t - job.arrival) / t_exclusive,
                resizes: l.resizes,
            });
            false
        });

        // Admit arrivals at t.
        while next_arrival < order.len() && jobs[order[next_arrival]].arrival <= t {
            active.push(Live {
                job: order[next_arrival],
                remaining: 1.0,
                width: 0,
                started: None,
                paused_until: 0.0,
                resizes: 0,
            });
            next_arrival += 1;
        }
    }

    let jobs_out: Vec<JobOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every job finishes"))
        .collect();
    let makespan = jobs_out.iter().fold(0.0f64, |m, j| m.max(j.finish));
    let n = jobs_out.len().max(1) as f64;
    let mean_stretch = jobs_out.iter().map(|j| j.stretch).sum::<f64>() / n;
    let max_stretch = jobs_out.iter().fold(0.0f64, |m, j| m.max(j.stretch));
    let serial: f64 = jobs_out.iter().map(|j| j.t_serial).sum();
    ScenarioReport {
        policy: policy.name().to_string(),
        total_cores: total,
        makespan,
        mean_stretch,
        max_stretch,
        utilization: if makespan > 0.0 {
            serial / (total as f64 * makespan)
        } else {
            0.0
        },
        resizes: jobs_out.iter().map(|j| j.resizes).sum(),
        oracle_evaluations: oracle.evaluations(),
        jobs: jobs_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::poisson_mixed;
    use pt_cost::CostModel;
    use pt_machine::platforms;

    /// The tentpole's acceptance gate, at test scale: on a Poisson mixed
    /// stream the malleable policy strictly beats FCFS-exclusive on mean
    /// stretch AND on platform utilization.
    #[test]
    fn malleable_beats_fcfs_on_stretch_and_utilization() {
        let spec = platforms::chic().with_nodes(4); // 16 cores
        let model = CostModel::new(&spec);
        let oracle = AdmissionOracle::new(&model);
        // Jobs are milliseconds long (small graphs keep tests fast), so a
        // contended stream needs arrivals a few milliseconds apart.
        let jobs = poisson_mixed(12, 200.0, 2, 42);
        let cfg = TenantSimConfig::default();

        let fcfs = run_scenario(&oracle, &jobs, Policy::FcfsExclusive, &cfg);
        let equi = run_scenario(&oracle, &jobs, Policy::Equi, &cfg);
        let mall = run_scenario(&oracle, &jobs, Policy::Malleable, &cfg);

        assert!(
            mall.mean_stretch < fcfs.mean_stretch,
            "mean stretch: malleable {} vs fcfs {}",
            mall.mean_stretch,
            fcfs.mean_stretch
        );
        assert!(
            mall.utilization > fcfs.utilization,
            "utilization: malleable {} vs fcfs {}",
            mall.utilization,
            fcfs.utilization
        );
        // Equi is a real contender; just sanity-check it ran.
        assert_eq!(equi.jobs.len(), jobs.len());
        assert!(mall.resizes > 0, "malleable scenarios exercise resizing");
    }

    #[test]
    fn scenarios_are_deterministic_and_conservative() {
        let spec = platforms::chic().with_nodes(2); // 8 cores
        let model = CostModel::new(&spec);
        let oracle = AdmissionOracle::new(&model);
        let jobs = poisson_mixed(6, 150.0, 1, 7);
        let cfg = TenantSimConfig::default();
        let a = run_scenario(&oracle, &jobs, Policy::Malleable, &cfg);
        let b = run_scenario(&oracle, &jobs, Policy::Malleable, &cfg);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.mean_stretch.to_bits(), b.mean_stretch.to_bits());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.finish.to_bits(), y.finish.to_bits());
        }
        // Physical sanity on every policy.
        for policy in [Policy::FcfsExclusive, Policy::Equi, Policy::Malleable] {
            let r = run_scenario(&oracle, &jobs, policy, &cfg);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
            for j in &r.jobs {
                assert!(j.finish >= j.arrival);
                assert!(j.start >= j.arrival);
                assert!(j.finish >= j.start);
            }
        }
    }

    #[test]
    fn fcfs_serializes_jobs() {
        let spec = platforms::chic().with_nodes(2);
        let model = CostModel::new(&spec);
        let oracle = AdmissionOracle::new(&model);
        // Two jobs arriving together: under FCFS the second starts when the
        // first finishes.
        let jobs = crate::arrivals::trace_jobs(&[
            (0.0, crate::arrivals::WorkloadKind::Epol, 1),
            (0.0, crate::arrivals::WorkloadKind::Epol, 1),
        ]);
        let r = run_scenario(
            &oracle,
            &jobs,
            Policy::FcfsExclusive,
            &TenantSimConfig::default(),
        );
        let t_excl = r.jobs[0].t_exclusive;
        assert!((r.jobs[0].finish - t_excl).abs() < 1e-9);
        assert!((r.jobs[1].finish - 2.0 * t_excl).abs() < 1e-9);
        assert_eq!(r.resizes, 0, "exclusive runs never resize");
    }
}
