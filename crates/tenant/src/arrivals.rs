//! Arrival processes for online scenarios: seeded Poisson streams of mixed
//! workloads, and explicit trace-driven submissions.

use crate::job::JobSpec;
use pt_mtask::TaskGraph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::sync::OnceLock;

/// The workload kinds a mixed tenant stream draws from — the paper's two
/// application families (extrapolation / implicit RK solvers) plus NAS
/// BT-MZ as the irregular-zone representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Extrapolation solver, R = 4 stage chains on BRUSS2D.
    Epol,
    /// Implicit Runge-Kutta, K = 4 stages on BRUSS2D.
    Irk,
    /// NAS BT-MZ class A (16 zones, skewed sizes).
    BtMz,
}

impl WorkloadKind {
    /// All kinds, in the order the mixed stream cycles them.
    pub const ALL: [WorkloadKind; 3] = [WorkloadKind::Epol, WorkloadKind::Irk, WorkloadKind::BtMz];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Epol => "epol",
            WorkloadKind::Irk => "irk",
            WorkloadKind::BtMz => "bt-mz",
        }
    }

    /// The kind's one-step task graph.  Graphs are built once per process
    /// and shared by `Arc`: every job of a kind points at the same graph,
    /// which is what lets the admission oracle keep one warm table store
    /// per kind (see [`JobSpec::graph_key`]).
    pub fn graph(self) -> Arc<TaskGraph> {
        static GRAPHS: OnceLock<[Arc<TaskGraph>; 3]> = OnceLock::new();
        let graphs = GRAPHS.get_or_init(|| {
            let sys = pt_ode::Bruss2d::new(100);
            [
                Arc::new(pt_ode::Epol::new(4).step_graph(&sys, 1)),
                Arc::new(pt_ode::Irk::new(4, 3).step_graph(&sys, 1)),
                Arc::new(pt_nas::bt_mz(pt_nas::Class::A).step_graph(1)),
            ]
        });
        match self {
            WorkloadKind::Epol => graphs[0].clone(),
            WorkloadKind::Irk => graphs[1].clone(),
            WorkloadKind::BtMz => graphs[2].clone(),
        }
    }
}

/// `n` arrival times of a Poisson process with `rate` arrivals per second
/// (exponential inter-arrival gaps), deterministic per `seed`.
pub fn poisson_arrivals(rate: f64, n: usize, seed: u64) -> Vec<f64> {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            // Inverse-CDF sampling; 1-u keeps the argument in (0, 1].
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -(1.0 - u).ln() / rate;
            t
        })
        .collect()
}

/// A mixed stream of `n` jobs arriving Poisson(`rate`), cycling workload
/// kinds pseudo-randomly, each with malleable floor `min_width`.
/// Deterministic per `seed`.
pub fn poisson_mixed(n: usize, rate: f64, min_width: usize, seed: u64) -> Vec<JobSpec> {
    let arrivals = poisson_arrivals(rate, n, seed);
    // Kind choice draws from an independent stream so changing `n` does not
    // reshuffle earlier jobs' kinds.
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| {
            let kind = WorkloadKind::ALL[rng.gen_range(0usize..WorkloadKind::ALL.len())];
            JobSpec::new(i, format!("{}#{i}", kind.name()), kind.graph(), arrival)
                .with_min_width(min_width)
        })
        .collect()
}

/// Trace-driven stream: one job per `(arrival, kind, min_width)` entry, in
/// the given order (arrivals need not be sorted; the simulator sorts).
pub fn trace_jobs(entries: &[(f64, WorkloadKind, usize)]) -> Vec<JobSpec> {
    entries
        .iter()
        .enumerate()
        .map(|(i, &(arrival, kind, min_width))| {
            JobSpec::new(i, format!("{}#{i}", kind.name()), kind.graph(), arrival)
                .with_min_width(min_width)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_sorted_and_rate_matched() {
        let a = poisson_arrivals(2.0, 400, 7);
        let b = poisson_arrivals(2.0, 400, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| t > 0.0));
        // Mean inter-arrival of a rate-2 process is 0.5s; 400 samples keep
        // the estimate within a loose factor.
        let mean = a.last().unwrap() / a.len() as f64;
        assert!((0.3..0.7).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn mixed_stream_shares_graph_arcs_per_kind() {
        let jobs = poisson_mixed(30, 1.0, 2, 3);
        assert_eq!(jobs.len(), 30);
        let mut keys: Vec<usize> = jobs.iter().map(JobSpec::graph_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(
            keys.len() <= WorkloadKind::ALL.len(),
            "at most one graph per kind, got {} distinct",
            keys.len()
        );
        assert!(jobs.iter().all(|j| j.min_width == 2));
        // Seed determinism extends to kinds and names.
        let again = poisson_mixed(30, 1.0, 2, 3);
        for (a, b) in jobs.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
        }
    }

    #[test]
    fn trace_jobs_preserve_entries() {
        let jobs = trace_jobs(&[(0.0, WorkloadKind::Epol, 4), (1.5, WorkloadKind::BtMz, 2)]);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "epol#0");
        assert_eq!(jobs[1].min_width, 2);
        assert_eq!(jobs[1].arrival, 1.5);
    }
}
