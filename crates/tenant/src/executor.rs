//! Gang timesharing of real programs on one shared worker pool.
//!
//! A [`pt_exec::Team`] runs one program at a time, so multi-tenancy on a
//! live team is *time*-sharing at layer granularity: the executor deals
//! round-robin slices — a few layers of one job's program, then a few of
//! the next — with every job keeping its own private [`DataStore`].  Width
//! changes (shrink to admit a newcomer, regrow when one leaves) happen
//! between slices by re-planning the remaining layers onto the new width
//! ([`pt_exec::replan`] — the same mechanism `ResizeHandle` applies at
//! layer boundaries inside a run).
//!
//! Because the solvers' task bodies are layout-independent (same
//! per-component arithmetic at any `ctx.size` — the property the
//! `exec_solvers` suite checks bit-for-bit), a job's final store contents
//! are identical whether it ran exclusively or interleaved with others,
//! and at any width schedule.  The tests below assert exactly that.

use pt_exec::{replan, DataStore, ExecError, Program, Team};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One tenant of the executor: a program, its private store, and the width
/// plan the policy decided.
pub struct TenantJob {
    /// Display name.
    pub name: String,
    /// Full program (all remaining layers) at its build width.
    pub program: Program,
    /// The job's private store.
    pub store: Arc<DataStore>,
    /// Width changes: `(layer, width)` — from `layer` on, run on `width`
    /// workers.  Unsorted entries are honored; the last entry at or before
    /// a layer wins.  Empty = run at the program's build width throughout.
    pub width_plan: Vec<(usize, usize)>,
}

impl TenantJob {
    /// A job running at its program's build width throughout.
    pub fn new(name: impl Into<String>, program: Program, store: Arc<DataStore>) -> TenantJob {
        TenantJob {
            name: name.into(),
            program,
            store,
            width_plan: Vec::new(),
        }
    }

    /// Add a width change taking effect at `layer`.
    pub fn resize_at(mut self, layer: usize, width: usize) -> TenantJob {
        assert!(width >= 1, "cannot resize to zero workers");
        self.width_plan.push((layer, width));
        self
    }

    /// The width in effect at `layer`.
    fn width_at(&self, layer: usize, default: usize) -> usize {
        self.width_plan
            .iter()
            .filter(|&&(l, _)| l <= layer)
            .max_by_key(|&&(l, _)| l)
            .map_or(default, |&(_, w)| w)
    }

    /// The first width-change boundary strictly inside `(layer, end)`.
    fn next_boundary(&self, layer: usize, end: usize) -> Option<usize> {
        self.width_plan
            .iter()
            .map(|&(l, _)| l)
            .filter(|&l| l > layer && l < end)
            .min()
    }
}

/// Per-job timesharing outcome.
#[derive(Debug, Clone)]
pub struct TenantRun {
    /// Gang slices the job was dealt.
    pub slices: usize,
    /// Width changes applied between slices.
    pub resizes: usize,
    /// Wall clock the job's slices consumed.
    pub wall: Duration,
}

/// Round-robin gang timesharing executor over one team.
pub struct TenantExecutor {
    team: Team,
    workers: usize,
    slice: usize,
}

impl TenantExecutor {
    /// An executor owning a team of `workers` threads, dealing one layer
    /// per slice (finest interleaving).
    pub fn new(workers: usize) -> TenantExecutor {
        TenantExecutor {
            team: Team::new(workers),
            workers,
            slice: 1,
        }
    }

    /// Deal `layers` layers per slice instead (coarser interleaving, fewer
    /// run round-trips).
    pub fn with_slice(mut self, layers: usize) -> TenantExecutor {
        assert!(layers >= 1, "a slice holds at least one layer");
        self.slice = layers;
        self
    }

    /// Run all jobs to completion, round-robin.  Each pass deals every
    /// unfinished job one slice of up to `slice` layers (cut early at a
    /// width-change boundary), re-planned onto the job's current width.
    /// Returns per-job outcomes in input order.
    pub fn run(&self, jobs: &[TenantJob]) -> Result<Vec<TenantRun>, ExecError> {
        let mut cursors = vec![0usize; jobs.len()];
        let mut out: Vec<TenantRun> = jobs
            .iter()
            .map(|_| TenantRun {
                slices: 0,
                resizes: 0,
                wall: Duration::ZERO,
            })
            .collect();
        let mut last_width: Vec<Option<usize>> = vec![None; jobs.len()];
        loop {
            let mut progressed = false;
            for (i, job) in jobs.iter().enumerate() {
                let cur = cursors[i];
                let n = job.program.layers.len();
                if cur >= n {
                    continue;
                }
                progressed = true;
                let default_w = job.program.required_workers().min(self.workers).max(1);
                let width = job.width_at(cur, default_w).min(self.workers);
                let mut end = (cur + self.slice).min(n);
                if let Some(b) = job.next_boundary(cur, end) {
                    end = b;
                }
                let slice = Program {
                    layers: job.program.layers[cur..end].to_vec(),
                };
                // Re-plan the slice onto the width in effect; a no-op when
                // the width matches the build width.
                let slice = if slice.required_workers() == width {
                    slice
                } else {
                    replan(&slice, width)
                };
                if let Some(prev) = last_width[i] {
                    if prev != width {
                        out[i].resizes += 1;
                    }
                }
                last_width[i] = Some(width);
                let t0 = Instant::now();
                self.team.run(&slice, &job.store)?;
                out[i].wall += t0.elapsed();
                out[i].slices += 1;
                cursors[i] = end;
            }
            if !progressed {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ode::pab::{startup, state_to_store};
    use pt_ode::{Bruss2d, Epol, Irk, OdeSystem, Pab};

    fn concat_steps(step: &Program, steps: usize) -> Program {
        let mut p = Program::default();
        for _ in 0..steps {
            for layer in &step.layers {
                p.push_layer(layer.clone());
            }
        }
        p
    }

    fn epol_job(steps: usize) -> (Program, Arc<DataStore>) {
        let sys_c = Bruss2d::new(6);
        let y0 = sys_c.initial_value();
        let sys: Arc<dyn OdeSystem> = Arc::new(sys_c);
        let program = Epol::new(4).build_program(&sys, &[0..2, 2..4]);
        let store = DataStore::new();
        store.put("t", vec![0.0]);
        store.put("h", vec![2e-4]);
        store.put("eta", y0);
        (concat_steps(&program, steps), store)
    }

    fn irk_job(steps: usize) -> (Program, Arc<DataStore>) {
        let sys_c = Bruss2d::new(5);
        let y0 = sys_c.initial_value();
        let sys: Arc<dyn OdeSystem> = Arc::new(sys_c);
        let program = Irk::new(4, 3).build_program(&sys, &[0..2, 2..4]);
        let store = DataStore::new();
        store.put("t", vec![0.0]);
        store.put("h", vec![5e-4]);
        store.put("eta", y0);
        (concat_steps(&program, steps), store)
    }

    fn pab_job(steps: usize) -> (Program, Arc<DataStore>) {
        let sys_c = Bruss2d::new(4);
        let y0 = sys_c.initial_value();
        let sys: Arc<dyn OdeSystem> = Arc::new(sys_c.clone());
        let st0 = startup(&sys_c, 0.0, &y0, 4e-4, 4);
        let program = Pab::new(4).build_program(&sys, &[0..2, 2..4]);
        let store = DataStore::new();
        state_to_store(&st0, &store);
        (concat_steps(&program, steps), store)
    }

    /// The tentpole's executor acceptance test: two real solver programs
    /// timeshare one 4-worker pool, and each job's store is bit-identical
    /// to an exclusive run of the same program.
    #[test]
    fn two_programs_timeshare_one_pool_bit_identically() {
        // Exclusive reference runs, one team each.
        let exclusive = TenantExecutor::new(4);
        let (ep, es) = epol_job(3);
        let (ip, is) = irk_job(2);
        exclusive
            .run(&[TenantJob::new("epol", ep.clone(), es.clone())])
            .unwrap();
        exclusive
            .run(&[TenantJob::new("irk", ip.clone(), is.clone())])
            .unwrap();
        let eta_epol = es.snapshot();
        let eta_irk = is.snapshot();

        // Interleaved on one shared pool.
        let shared = TenantExecutor::new(4);
        let (ep2, es2) = epol_job(3);
        let (ip2, is2) = irk_job(2);
        let runs = shared
            .run(&[
                TenantJob::new("epol", ep2, es2.clone()),
                TenantJob::new("irk", ip2, is2.clone()),
            ])
            .unwrap();
        assert!(runs[0].slices > 1 && runs[1].slices > 1, "actually sliced");
        assert_eq!(
            es2.snapshot(),
            eta_epol,
            "epol store differs from exclusive run"
        );
        assert_eq!(
            is2.snapshot(),
            eta_irk,
            "irk store differs from exclusive run"
        );
    }

    /// Shrink/regrow between slices (the malleable path) leaves results
    /// bit-identical: a job squeezed to 2 workers mid-run and regrown to 4
    /// matches its fixed-width exclusive run.
    #[test]
    fn width_schedule_between_slices_is_bit_identical() {
        let (bp, bs) = epol_job(4); // 8 layers
        TenantExecutor::new(4)
            .run(&[TenantJob::new("base", bp.clone(), bs.clone())])
            .unwrap();
        let baseline = bs.snapshot();

        let (rp, rs) = epol_job(4);
        let (other_p, other_s) = pab_job(2);
        let runs = TenantExecutor::new(4)
            .run(&[
                // Shrink to 2 at layer 2 (a newcomer needs room), regrow to
                // 3 at layer 5, back to 4 at layer 7.
                TenantJob::new("resized", rp, rs.clone())
                    .resize_at(2, 2)
                    .resize_at(5, 3)
                    .resize_at(7, 4),
                TenantJob::new("newcomer", other_p, other_s),
            ])
            .unwrap();
        assert_eq!(runs[0].resizes, 3, "three width changes applied");
        assert_eq!(
            rs.snapshot(),
            baseline,
            "resized run differs from uninterrupted baseline"
        );
    }

    #[test]
    fn slice_granularity_does_not_change_results() {
        let (p1, s1) = irk_job(2);
        TenantExecutor::new(4)
            .with_slice(100)
            .run(&[TenantJob::new("irk", p1.clone(), s1.clone())])
            .unwrap();
        let coarse = s1.snapshot();
        let (p2, s2) = irk_job(2);
        TenantExecutor::new(4)
            .run(&[TenantJob::new("irk", p2, s2.clone())])
            .unwrap();
        assert_eq!(s2.snapshot(), coarse);
    }
}
