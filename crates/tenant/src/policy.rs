//! Allotment policies: how the live platform is divided among the jobs
//! present at a decision point.
//!
//! Policies are *pure*: given the present jobs (arrival order), the machine
//! width and the oracle, they return one allotment per job (0 = queued).
//! The mechanism that realizes a decision — shrink/regrow at layer
//! boundaries — lives in `pt-exec` ([`pt_exec::ResizeHandle`]) and the
//! [`executor`](crate::executor); the scenario simulator charges a resize
//! penalty instead.

use crate::job::JobSpec;
use crate::oracle::AdmissionOracle;

/// The scheduling policy of a tenant scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// First-come-first-served, exclusive: the earliest unfinished job owns
    /// the whole machine; everyone else queues.  The classic space-sharing
    /// baseline.
    FcfsExclusive,
    /// Equipartition: every present job gets an equal share (earliest jobs
    /// take the remainder); jobs beyond one core each queue.
    Equi,
    /// Malleable: admit in arrival order while the malleable floors
    /// (`JobSpec::min_width`) fit — shrinking incumbents to their floors to
    /// admit newcomers — then water-fill the leftover cores greedily onto
    /// the job with the best marginal speedup per core (doubling ladder,
    /// priced by the oracle's warm tables).
    Malleable,
}

impl Policy {
    /// Display name (stable; used in reports and bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            Policy::FcfsExclusive => "fcfs-exclusive",
            Policy::Equi => "equi",
            Policy::Malleable => "malleable",
        }
    }

    /// Allotments for `jobs` (in arrival order) on `total` cores; entry `i`
    /// is job `i`'s width, 0 meaning queued.  Deterministic: ties break to
    /// the earliest arrival.
    pub fn allocate(
        self,
        jobs: &[&JobSpec],
        oracle: &AdmissionOracle<'_>,
        total: usize,
    ) -> Vec<usize> {
        assert!(total >= 1);
        match self {
            Policy::FcfsExclusive => {
                let mut widths = vec![0; jobs.len()];
                if let Some(w) = widths.first_mut() {
                    *w = total;
                }
                widths
            }
            Policy::Equi => {
                let k = jobs.len().min(total);
                let mut widths = vec![0; jobs.len()];
                if k == 0 {
                    return widths;
                }
                let (base, extra) = (total / k, total % k);
                for (i, w) in widths.iter_mut().take(k).enumerate() {
                    *w = base + usize::from(i < extra);
                }
                widths
            }
            Policy::Malleable => malleable_widths(jobs, oracle, total),
        }
    }
}

/// Floors-first admission plus greedy marginal-gain water-filling.
fn malleable_widths(jobs: &[&JobSpec], oracle: &AdmissionOracle<'_>, total: usize) -> Vec<usize> {
    let mut widths = vec![0usize; jobs.len()];
    let mut used = 0usize;
    let mut admitted: Vec<usize> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        let floor = job.min_width.min(total);
        if used + floor <= total {
            widths[i] = floor;
            used += floor;
            admitted.push(i);
        }
    }
    // Water-fill the rest: repeatedly grow the job whose next ladder step
    // (double, capped by the free pool) buys the most rate per core.
    loop {
        let free = total - used;
        if free == 0 || admitted.is_empty() {
            break;
        }
        let mut best: Option<(f64, usize, usize)> = None;
        for &i in &admitted {
            let w = widths[i];
            let next = (w * 2).min(w + free).min(total);
            if next <= w {
                continue;
            }
            let t_now = oracle.predict_raw(jobs[i], w);
            let t_next = oracle.predict_raw(jobs[i], next);
            let gain = (1.0 / t_next - 1.0 / t_now) / (next - w) as f64;
            if gain > 0.0 && best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, i, next));
            }
        }
        let Some((_, i, next)) = best else { break };
        used += next - widths[i];
        widths[i] = next;
    }
    widths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::WorkloadKind;
    use pt_cost::CostModel;
    use pt_machine::platforms;

    fn jobs3() -> Vec<JobSpec> {
        vec![
            JobSpec::new(0, "epol#0", WorkloadKind::Epol.graph(), 0.0).with_min_width(4),
            JobSpec::new(1, "bt#1", WorkloadKind::BtMz.graph(), 0.1).with_min_width(4),
            JobSpec::new(2, "irk#2", WorkloadKind::Irk.graph(), 0.2).with_min_width(4),
        ]
    }

    #[test]
    fn fcfs_and_equi_shapes() {
        let spec = platforms::chic().with_nodes(4); // 16 cores
        let model = CostModel::new(&spec);
        let oracle = AdmissionOracle::new(&model);
        let jobs = jobs3();
        let refs: Vec<&JobSpec> = jobs.iter().collect();
        assert_eq!(
            Policy::FcfsExclusive.allocate(&refs, &oracle, 16),
            vec![16, 0, 0]
        );
        assert_eq!(Policy::Equi.allocate(&refs, &oracle, 16), vec![6, 5, 5]);
        assert_eq!(Policy::Equi.allocate(&refs[..2], &oracle, 16), vec![8, 8]);
    }

    #[test]
    fn malleable_respects_floors_and_spends_every_core() {
        let spec = platforms::chic().with_nodes(4);
        let model = CostModel::new(&spec);
        let oracle = AdmissionOracle::new(&model);
        let jobs = jobs3();
        let refs: Vec<&JobSpec> = jobs.iter().collect();
        let widths = Policy::Malleable.allocate(&refs, &oracle, 16);
        assert!(widths.iter().all(|&w| w >= 4), "floors hold: {widths:?}");
        assert!(
            widths.iter().sum::<usize>() <= 16,
            "no oversubscription: {widths:?}"
        );
        // Water-filling is deterministic.
        assert_eq!(widths, Policy::Malleable.allocate(&refs, &oracle, 16));
    }

    #[test]
    fn malleable_queues_when_floors_do_not_fit() {
        let spec = platforms::chic().with_nodes(1); // 4 cores
        let model = CostModel::new(&spec);
        let oracle = AdmissionOracle::new(&model);
        let jobs = jobs3(); // floors of 4 each
        let refs: Vec<&JobSpec> = jobs.iter().collect();
        let widths = Policy::Malleable.allocate(&refs, &oracle, 4);
        assert_eq!(widths[0], 4);
        assert_eq!(&widths[1..], &[0, 0], "later jobs queue: {widths:?}");
    }
}
