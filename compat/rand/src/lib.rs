//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors minimal, functionally correct implementations of
//! the external crates it uses (see `compat/README.md`).  This crate covers
//! the `rand` API subset used here: [`RngCore`], [`SeedableRng::seed_from_u64`],
//! and [`Rng::{gen_range, gen_bool}`](Rng).  Distributions are uniform; the
//! streams are deterministic per seed but are *not* bit-compatible with the
//! upstream `rand` crate (no test in this repository relies on golden
//! values).

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce a uniform sample (the argument of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                // Modulo reduction: bias is negligible for the small spans
                // used in tests (span << 2^64).
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128) + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                ((lo as i128) + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 (or 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but serviceable mixing step for the unit tests.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0 >> 1
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
