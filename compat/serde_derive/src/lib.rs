//! Offline stand-in for `serde_derive` (see `compat/README.md`).
//!
//! Generates impls of the compat `serde::Serialize` / `serde::Deserialize`
//! traits (value-tree model, not the visitor model of real serde).  The
//! parser is hand-rolled over `proc_macro::TokenStream` — no `syn`/`quote`
//! available offline — and supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (plus `#[serde(with = "module")]` on fields),
//! * tuple structs (newtype and general),
//! * unit structs,
//! * enums with unit, tuple and struct variants,
//!
//! all without generic parameters.  Unsupported shapes fail to compile with
//! a descriptive error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    with: Option<String>,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derive the compat `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derive the compat `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Attributes preceding an item/field: returns the `with`-module of a
/// `#[serde(with = "...")]` attribute if present, skipping everything else
/// (doc comments arrive here as `#[doc = "..."]`).
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> Option<String> {
    let mut with = None;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if let Some(w) = parse_serde_with(&g.stream()) {
                        with = Some(w);
                    }
                    *pos += 1;
                }
            }
            _ => break,
        }
    }
    with
}

/// `serde ( with = "module::path" )` → `Some("module::path")`.
fn parse_serde_with(attr: &TokenStream) -> Option<String> {
    let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(kw), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                    if kw.to_string() == "with" && eq.as_char() == '=' =>
                {
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            // `pub(crate)` etc.
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    take_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "compat serde_derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(&g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(&g.stream())),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(&g.stream())?,
            }),
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}`")),
    }
}

/// Fields of a named-field struct or struct variant.
fn parse_named_fields(body: &TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let with = take_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, with });
        // Skip the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
    }
    Ok(fields)
}

/// Advance past one type, stopping at a top-level `,`.  Angle brackets are
/// not token groups, so nesting depth is tracked by hand.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => break,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_tuple_fields(body: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        // Each field may start with attributes and a visibility.
        take_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
    }
    count
}

fn parse_variants(body: &TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        take_attrs(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(&g.stream())?)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == '=' {
                pos += 1;
                let mut depth = 0;
                while let Some(t) = tokens.get(pos) {
                    if let TokenTree::Punct(q) = t {
                        match q.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => break,
                            _ => {}
                        }
                    }
                    pos += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn ser_field_expr(field: &Field) -> String {
    let f = &field.name;
    match &field.with {
        Some(module) => format!("{module}::serialize(&self.{f})"),
        None => format!("::serde::Serialize::serialize(&self.{f})"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| format!("({:?}.to_string(), {})", f.name, ser_field_expr(f)))
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Map(vec![({vname:?}.to_string(), {payload})]),",
                            binds = binds.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::serialize({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Map(vec![{entries}]))]),",
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    }
}

fn de_field_expr(field: &Field, source: &str) -> String {
    let f = &field.name;
    match &field.with {
        Some(module) => format!("{module}::deserialize(::serde::field({source}, {f:?})?)?"),
        None => format!("::serde::Deserialize::deserialize(::serde::field({source}, {f:?})?)?"),
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match __v {{\n\
                             ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                 Ok({name}({items})),\n\
                             other => Err(::serde::Error::msg(format!(\
                                 \"expected {n}-element sequence for {name}, got {{other:?}}\"))),\n\
                         }}",
                        items = items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{}: {}", f.name, de_field_expr(f, "__v")))
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| format!("{vname:?} => Ok({name}::{vname}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::deserialize(__payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                            .collect();
                        Some(format!(
                            "{vname:?} => match __payload {{\n\
                                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                     Ok({name}::{vname}({items})),\n\
                                 other => Err(::serde::Error::msg(format!(\
                                     \"bad payload for {name}::{vname}: {{other:?}}\"))),\n\
                             }},",
                            items = items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| format!("{}: {}", f.name, de_field_expr(f, "__payload")))
                            .collect();
                        Some(format!(
                            "{vname:?} => Ok({name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::msg(format!(\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __payload) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => Err(::serde::Error::msg(format!(\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::msg(format!(\
                                 \"expected {name} variant, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    }
}
