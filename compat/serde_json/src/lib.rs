//! Offline stand-in for the `serde_json` crate (see `compat/README.md`).
//!
//! Serializes the compat `serde::Value` tree to JSON text and parses JSON
//! text back.  Covers the subset this workspace uses: `to_string`,
//! `to_string_pretty` and `from_str`.  Floats print via Rust's `{:?}`
//! (shortest representation that round-trips, keeping a trailing `.0` so
//! they re-parse as floats), matching what the `float_roundtrip` feature
//! guarantees upstream.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// JSON serialization/parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<SerdeError> for Error {
    fn from(e: SerdeError) -> Error {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps `.0` on integral floats and is shortest-roundtrip.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Infinity; real serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb".to_string());
    }

    #[test]
    fn float_precision_roundtrips() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 123456.789012345] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1.0f64, 2.5, -3.0];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1.0,2.5,-3.0]");
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);

        let nested: Vec<Vec<u64>> = vec![vec![1], vec![], vec![2, 3]];
        let s = to_string(&nested).unwrap();
        assert_eq!(from_str::<Vec<Vec<u64>>>(&s).unwrap(), nested);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<(usize, f64)>>(&s).unwrap(), v);
    }
}
