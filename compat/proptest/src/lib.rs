//! Offline stand-in for the `proptest` crate (see `compat/README.md`).
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, range and collection
//! strategies, `prop_map`, tuple strategies, `any::<T>()`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.  Sampling is deterministic: the
//! RNG for each case is seeded from the test name and case index, so
//! failures reproduce exactly on re-run.  No shrinking — a failing case
//! reports its inputs via the assertion message instead.

use rand::Rng;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure returned from a test-case body (via `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG seeded from the test name and case index — stable across runs.
    pub fn deterministic(name: &str, case: u64) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(
            seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical unconstrained strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u32()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let unit = rng.gen_range(-1.0f64..1.0);
        let scale = rng.gen_range(0i32..60) - 30;
        unit * 2f64.powi(scale)
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — vectors of `element` samples.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategy trait and combinators, re-exported where user code expects them.
pub mod strategy {
    pub use super::{Map, Strategy};
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Define property tests.  Each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal `#[test]` that samples its arguments `cases` times and
/// runs the body; `prop_assert!` failures panic with the case number so the
/// seed can be reproduced.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1, config.cases, stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Assert inside a proptest body; failure aborts only the current case's
/// closure via `return Err(..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` — equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_sampling() {
        let strat = (0usize..100, 0.0f64..1.0);
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(strat.sample(&mut a).0, strat.sample(&mut b).0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_respected(x in 5usize..10, v in prop::collection::vec(0.0f64..1.0, 1..4)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)), "out of range: {:?}", v);
        }

        #[test]
        fn mapped_strategy(y in (1usize..4).prop_map(|n| n * 2)) {
            prop_assert_eq!(y % 2, 0);
        }
    }
}
