//! Offline stand-in for the `rand_chacha` crate (see `compat/README.md`).
//!
//! Implements a genuine ChaCha stream cipher core with 8 rounds behind the
//! [`ChaCha8Rng`] name.  The key schedule from `seed_from_u64` differs from
//! upstream (`rand_chacha` expands the seed through its own PCG-based
//! mixer), so streams are deterministic per seed but not bit-compatible
//! with the real crate — nothing in this workspace depends on that.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, counter-mode keystream as random words.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, 2 counter words and
    /// 2 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 forces a refill.
    word: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// SplitMix64 step, used to expand the 64-bit seed into key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate() {
            self.block[i] = w.wrapping_add(self.state[i]);
        }
        self.word = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter starts at 0; nonce from the seed as well.
        let n = splitmix64(&mut sm);
        state[14] = n as u32;
        state[15] = (n >> 32) as u32;
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 3, "distinct seeds should diverge");
    }

    #[test]
    fn usable_with_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "roughly uniform: {counts:?}");
        }
    }
}
