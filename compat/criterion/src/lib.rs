//! Offline stand-in for the `criterion` crate (see `compat/README.md`).
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `bench_function`, `benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros — but runs each
//! benchmark only a handful of iterations and prints a single timing line.
//! There is no statistics engine; the point is that `cargo bench` (and
//! `cargo test`, which smoke-runs `harness = false` bench targets) links
//! and executes every benchmark deterministically and fast.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Iterations per benchmark — enough to smoke the code path, small enough
/// that `cargo test` finishes promptly.
const ITERS: u32 = 3;

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Run `f` a few times, recording total wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed_ns: 0 };
    f(&mut b);
    println!(
        "bench {label}: {:.1} us/iter ({ITERS} iters)",
        b.elapsed_ns as f64 / 1_000.0 / ITERS as f64
    );
}

/// Benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stand-in always runs a fixed,
    /// tiny number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Run a parameterized benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Parameter value only.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function(format!("fmt-{}", 2), |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| n * n)
        });
        g.finish();
    }
}
