//! Offline stand-in for the `serde` crate (see `compat/README.md`).
//!
//! Real `serde` decouples data structures from formats through the
//! `Serializer`/`Deserializer` visitor traits.  This stand-in collapses the
//! data model to one concrete [`Value`] tree — `Serialize` produces a
//! `Value`, `Deserialize` consumes one — which is all the formats this
//! workspace needs (JSON via the sibling `serde_json` stand-in).  The
//! `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive`) generate impls of these traits, including support for
//! `#[serde(with = "module")]` where `module::serialize(&T) -> Value` and
//! `module::deserialize(&Value) -> Result<T, Error>`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Error with a formatted message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

/// Structure-to-value conversion (implemented by `#[derive(Serialize)]`).
pub trait Serialize {
    /// Serialize `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Value-to-structure conversion (implemented by `#[derive(Deserialize)]`).
pub trait Deserialize: Sized {
    /// Deserialize from a [`Value`] tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Look up a struct field in a serialized map (used by generated code).
pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
        other => Err(Error::msg(format!(
            "expected map for field `{name}`, got {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as i128;
                if let Ok(i) = i64::try_from(wide) {
                    Value::Int(i)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(Error::msg(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("integer {wide} out of range")))
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected map, got {other:?}"))),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected {LEN}-tuple, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42usize.serialize()).unwrap(), 42);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(Vec::<f64>::deserialize(&v.serialize()).unwrap(), v);
        let t = (1usize, 2usize, 3.5f64);
        assert_eq!(
            <(usize, usize, f64)>::deserialize(&t.serialize()).unwrap(),
            t
        );
    }

    #[test]
    fn field_lookup() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert!(field(&v, "a").is_ok());
        assert!(field(&v, "b").is_err());
    }
}
