#![allow(clippy::single_range_in_vec_init)] // worker-group layouts

//! Property test for malleable shrink/regrow: **any** schedule of width
//! changes applied at layer boundaries leaves every solver's store
//! bit-identical to the uninterrupted run.
//!
//! This is the correctness contract the multi-tenant layer leans on — a
//! tenant scheduler may squeeze or regrow a running job at any boundary
//! without perturbing the numerics.  It holds because the solvers' task
//! bodies are layout-independent (per-component arithmetic, allgather
//! assembly, no width-dependent reduction orders), and the executor's
//! replan only re-partitions *future* layers.  The schedules are drawn by
//! proptest: a handful of `(layer, width)` requests per run, including
//! repeated layers (last wins), no-op requests matching the current
//! width, and shrink-to-one.

use parallel_tasks::exec::{DataStore, Program, ResizeHandle, RunOptions, Team};
use parallel_tasks::ode::pab::{startup, state_to_store};
use parallel_tasks::ode::{Bruss2d, Diirk, Epol, Irk, OdeSystem, Pab, Pabm};
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

fn concat_steps(step: &Program, steps: usize) -> Program {
    let mut p = Program::default();
    for _ in 0..steps {
        for layer in &step.layers {
            p.push_layer(layer.clone());
        }
    }
    p
}

fn ode_store(y0: &[f64], h: f64) -> Arc<DataStore> {
    let store = DataStore::new();
    store.put("t", vec![0.0]);
    store.put("h", vec![h]);
    store.put("eta", y0.to_vec());
    store
}

/// One solver case: a program factory (fresh program per run — DIIRK's
/// inner counter must not leak between runs) and a store factory.
struct SolverCase {
    name: &'static str,
    width: usize,
    build: Box<dyn Fn() -> (Program, Arc<DataStore>)>,
}

fn solver_cases() -> Vec<SolverCase> {
    vec![
        SolverCase {
            name: "epol",
            width: 4,
            build: Box::new(|| {
                let sys_c = Bruss2d::new(6);
                let y0 = sys_c.initial_value();
                let sys: Arc<dyn OdeSystem> = Arc::new(sys_c);
                let step = Epol::new(4).build_program(&sys, &[0..2, 2..4]);
                (concat_steps(&step, 3), ode_store(&y0, 2e-4))
            }),
        },
        SolverCase {
            name: "irk",
            width: 3,
            build: Box::new(|| {
                let sys_c = Bruss2d::new(5);
                let y0 = sys_c.initial_value();
                let sys: Arc<dyn OdeSystem> = Arc::new(sys_c);
                let step = Irk::new(4, 3).build_program(&sys, &[0..2, 2..3]);
                (concat_steps(&step, 2), ode_store(&y0, 5e-4))
            }),
        },
        SolverCase {
            name: "diirk",
            width: 3,
            build: Box::new(|| {
                let sys_c = Bruss2d::new(4);
                let y0 = sys_c.initial_value();
                let sys: Arc<dyn OdeSystem> = Arc::new(sys_c);
                let counter = Arc::new(AtomicUsize::new(0));
                let step = Diirk::new(3, 2).build_program(&sys, &[0..1, 1..2, 2..3], counter);
                (concat_steps(&step, 2), ode_store(&y0, 5e-4))
            }),
        },
        SolverCase {
            name: "pab",
            width: 4,
            build: Box::new(|| {
                let sys_c = Bruss2d::new(4);
                let y0 = sys_c.initial_value();
                let st0 = startup(&sys_c, 0.0, &y0, 4e-4, 4);
                let sys: Arc<dyn OdeSystem> = Arc::new(sys_c);
                let step = Pab::new(4).build_program(&sys, &[0..2, 2..4]);
                let store = DataStore::new();
                state_to_store(&st0, &store);
                (concat_steps(&step, 2), store)
            }),
        },
        SolverCase {
            name: "pabm",
            width: 4,
            build: Box::new(|| {
                let sys_c = Bruss2d::new(4);
                let y0 = sys_c.initial_value();
                let st0 = startup(&sys_c, 0.0, &y0, 4e-4, 4);
                let sys: Arc<dyn OdeSystem> = Arc::new(sys_c);
                let step = Pabm::new(4, 2).build_program(&sys, &[0..1, 1..2, 2..3, 3..4]);
                let store = DataStore::new();
                state_to_store(&st0, &store);
                (concat_steps(&step, 2), store)
            }),
        },
    ]
}

/// Derive a resize schedule from the proptest-drawn seed: `n` scripted
/// `(layer, width)` requests anywhere in the program, any width in
/// `1..=team width` (no-ops and duplicates included on purpose).
fn schedule(seed: u64, n: usize, layers: usize, width: usize) -> Vec<(usize, usize)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen_range(0..layers), rng.gen_range(1..=width)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any boundary shrink/regrow schedule is invisible in the results,
    /// for all five solvers.
    #[test]
    fn resize_schedules_never_change_solver_results(
        seed in any::<u64>(),
        n in 1usize..5,
    ) {
        for case in solver_cases() {
            let team = Team::new(case.width);

            // Uninterrupted baseline.
            let (program, baseline) = (case.build)();
            team.run(&program, &baseline).unwrap();

            // Same program under a scripted resize schedule.
            let (program, store) = (case.build)();
            let handle = ResizeHandle::new();
            let plan = schedule(seed, n, program.layers.len(), case.width);
            for &(layer, width) in &plan {
                handle.request_at(layer, width);
            }
            let opts = RunOptions::default().with_resize(handle.clone());
            team.run_with(&program, &store, &opts).unwrap();

            prop_assert_eq!(
                store.snapshot(),
                baseline.snapshot(),
                "{}: resize schedule {:?} changed the results",
                case.name,
                plan
            );
        }
    }
}
