//! The README's "Library tour" snippet, compiled and executed verbatim so
//! the front-page documentation can never rot.

use parallel_tasks::{core::*, cost::CostModel, machine::platforms, mtask::*, sim::Simulator};

#[test]
fn readme_library_tour_runs() {
    // 1. Describe the program: tasks + data dependencies (the DSL derives
    //    the coordination edges like the CM-task compiler).
    let spec = Spec::seq(vec![
        Spec::parfor(0..4, |i| {
            Spec::task(MTask::with_comm(
                format!("stage{i}"),
                1e9,
                vec![CommOp::allgather(8e5, 1.0)],
            ))
            .defines([DataRef::orthogonal(format!("X{i}"), 8e5)])
        }),
        Spec::task(MTask::compute("update", 1e8)).uses((0..4).map(|i| format!("X{i}"))),
    ]);
    let graph = spec.compile_flat();

    // 2. Pick a platform and schedule (Algorithm 1 with the g-sweep).
    let machine = platforms::chic().with_cores(64);
    let model = CostModel::new(&machine);
    let schedule = LayerScheduler::new(&model).schedule(&graph);

    // 3. Map symbolic to physical cores and simulate.
    let mapping = MappingStrategy::Consecutive.mapping(&machine, 64);
    let report = Simulator::new(&model).simulate_layered(&graph, &schedule, &mapping);
    assert!(report.makespan > 0.0 && report.makespan.is_finite());
}
