//! Property tests of the shared-memory collectives: for random group
//! sizes, block lengths and values, every collective must match its
//! sequential definition.

use proptest::prelude::*;
use pt_exec::GroupComm;
use std::sync::Arc;

/// Run `f(rank, comm)` on `q` OS threads sharing one communicator.
fn spmd<T: Send + 'static>(
    q: usize,
    f: impl Fn(usize, &GroupComm) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let comm = Arc::new(GroupComm::new(q));
    let f = Arc::new(f);
    let handles: Vec<_> = (0..q)
        .map(|r| {
            let comm = comm.clone();
            let f = f.clone();
            std::thread::spawn(move || f(r, &comm))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("no panic"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allgather_matches_concatenation(
        q in 1usize..6,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let blocks: Vec<Vec<f64>> = (0..q)
            .map(|_| (0..len).map(|_| rng.gen_range(-1e6..1e6)).collect())
            .collect();
        let expect: Vec<f64> = blocks.concat();
        let blocks = Arc::new(blocks);
        let results = spmd(q, move |rank, comm| {
            let mut dst = vec![0.0; q * len];
            comm.allgather(rank, &blocks[rank], &mut dst);
            dst
        });
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn allgatherv_matches_concatenation(
        seed in any::<u64>(),
        q in 1usize..5,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let counts: Vec<usize> = (0..q).map(|_| rng.gen_range(0..32)).collect();
        let blocks: Vec<Vec<f64>> = counts
            .iter()
            .map(|&c| (0..c).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let expect: Vec<f64> = blocks.concat();
        let blocks = Arc::new(blocks);
        let counts = Arc::new(counts);
        let total: usize = counts.iter().sum();
        let results = spmd(q, move |rank, comm| {
            let mut dst = vec![0.0; total];
            comm.allgatherv(rank, &blocks[rank], &counts, &mut dst);
            dst
        });
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn bcast_delivers_root_data(
        q in 1usize..6,
        len in 1usize..48,
        root_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(root_seed);
        let root = rng.gen_range(0..q);
        let payload: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let expect = payload.clone();
        let results = spmd(q, move |rank, comm| {
            let mut buf = if rank == root {
                payload.clone()
            } else {
                vec![0.0; len]
            };
            comm.bcast(rank, root, &mut buf);
            buf
        });
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn allreduce_sum_matches_sequential(
        q in 1usize..6,
        len in 1usize..32,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f64>> = (0..q)
            .map(|_| (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect())
            .collect();
        let expect: Vec<f64> = (0..len)
            .map(|i| (0..q).map(|r| inputs[r][i]).sum())
            .collect();
        let inputs = Arc::new(inputs);
        let results = spmd(q, move |rank, comm| {
            let mut buf = inputs[rank].clone();
            comm.allreduce_sum(rank, &mut buf);
            buf
        });
        for r in results {
            for (got, want) in r.iter().zip(&expect) {
                prop_assert!((got - want).abs() < 1e-9);
            }
        }
    }
}
