//! Cross-validation of Table 1: the communication-operation counts derived
//! from the *emitted M-task graphs* under a task-parallel schedule must
//! match the paper's closed formulas (`pt_ode::census`).

use parallel_tasks::core::{LayerScheduler, MappingStrategy};
use parallel_tasks::cost::CostModel;
use parallel_tasks::machine::platforms;
use parallel_tasks::mtask::{CollectiveKind, RedistPattern, TaskGraph};
use parallel_tasks::ode::{census, Bruss2d, Epol, Irk, Pab, Pabm, Version};

/// Count the allgather/bcast operations of one group's tasks and of the
/// full-width tasks in a layered schedule of a single-step graph.
fn classify(graph: &TaskGraph, sched: &parallel_tasks::core::LayeredSchedule) -> Counts {
    let total = sched.total_cores;
    let mut c = Counts::default();
    // Use group 0 of the widest layer as "one of the disjoint groups".
    for layer in &sched.layers {
        let full_width = layer.num_groups() == 1 && layer.group_sizes[0] == total;
        for (g, tasks) in layer.assignments.iter().enumerate() {
            for &t in tasks {
                for op in &graph.task(t).comm {
                    let bucket = if full_width {
                        &mut c.global
                    } else if g == 0 {
                        &mut c.group
                    } else {
                        continue;
                    };
                    match op.kind {
                        CollectiveKind::Allgather => bucket.0 += op.count,
                        CollectiveKind::Broadcast => bucket.1 += op.count,
                        _ => {}
                    }
                }
            }
        }
    }
    // Orthogonal exchanges: one aggregated exchange per layer boundary that
    // carries orthogonal edges.
    let mut boundaries = std::collections::HashSet::new();
    let mut layer_of = std::collections::HashMap::new();
    for (li, layer) in sched.layers.iter().enumerate() {
        for t in layer.assignments.iter().flatten() {
            layer_of.insert(*t, li);
        }
    }
    for (a, b, data) in graph.edges() {
        if data.pattern == RedistPattern::Orthogonal {
            if let (Some(&la), Some(&lb)) = (layer_of.get(&a), layer_of.get(&b)) {
                if la != lb {
                    boundaries.insert(lb);
                }
            }
        }
    }
    c.orthogonal = boundaries.len() as f64;
    c
}

#[derive(Default, Debug)]
struct Counts {
    /// (Tag, Tbc) on all cores.
    global: (f64, f64),
    /// (Tag, Tbc) on one proper subgroup.
    group: (f64, f64),
    /// Aggregated orthogonal exchanges.
    orthogonal: f64,
}

fn tp_schedule(graph: &TaskGraph, groups: usize) -> parallel_tasks::core::LayeredSchedule {
    let spec = platforms::chic().with_cores(64);
    let model = CostModel::new(&spec);
    let s = LayerScheduler::new(&model)
        .with_fixed_groups(groups)
        .schedule(graph);
    // Sanity: the mapping machinery accepts it.
    let _ = MappingStrategy::Consecutive.mapping(&spec, 64);
    s
}

#[test]
fn epol_graph_matches_census() {
    let r = 8;
    let sys = Bruss2d::new(20);
    let graph = Epol::new(r).step_graph(&sys, 1);
    let sched = tp_schedule(&graph, r / 2);
    let c = classify(&graph, &sched);
    let want = census::epol(Version::TaskParallel, r);
    // Group-based: R+1 micro-step allgathers for the group holding the
    // paired chains i and R+1−i.
    assert_eq!(c.group.0, want.group_tag, "{c:?}");
    // Global: the combine broadcast.
    assert_eq!(c.global.1, want.global_tbc, "{c:?}");
    // No orthogonal communication in EPOL.
    assert_eq!(c.orthogonal, 0.0, "{c:?}");
}

#[test]
fn irk_graph_matches_census() {
    let (k, m) = (4, 3);
    let sys = Bruss2d::new(20);
    let graph = Irk::new(k, m).step_graph(&sys, 1);
    let sched = tp_schedule(&graph, k);
    let c = classify(&graph, &sched);
    let want = census::irk(Version::TaskParallel, k, m);
    assert_eq!(c.group.0, want.group_tag, "{c:?}");
    // The emitter has the init evaluation + the update as full-width tasks
    // (census folds init into the step): 1 extra global Tag.
    assert_eq!(c.global.0, want.global_tag + 1.0, "{c:?}");
    assert_eq!(c.orthogonal, want.orthogonal_tag, "{c:?}");
}

#[test]
fn pab_graph_matches_census() {
    let k = 8;
    let sys = Bruss2d::new(20);
    // Two steps so the inter-step orthogonal exchange materialises; counts
    // below are per step (halved).
    let graph = Pab::new(k).step_graph(&sys, 2);
    let sched = tp_schedule(&graph, k);
    let c = classify(&graph, &sched);
    let want = census::pab(Version::TaskParallel, k);
    assert_eq!(c.group.0 / 2.0, want.group_tag, "{c:?}");
    assert_eq!(c.global.0, 0.0, "{c:?}");
    // One orthogonal exchange between the two steps.
    assert_eq!(c.orthogonal, want.orthogonal_tag, "{c:?}");
}

#[test]
fn pabm_graph_matches_census() {
    let (k, m) = (8, 2);
    let sys = Bruss2d::new(20);
    let graph = Pabm::new(k, m).step_graph(&sys, 2);
    let sched = tp_schedule(&graph, k);
    let c = classify(&graph, &sched);
    let want = census::pabm(Version::TaskParallel, k, m);
    assert_eq!(c.group.0 / 2.0, want.group_tag, "{c:?}");
    // Orthogonal: predictor results exchanged once per step: one boundary
    // inside each step (predictor → first corrector sweep) plus one between
    // the steps = 2·m-independent, i.e. 2 per-step boundaries here… the
    // per-step count the census reports is 1.
    assert!(
        c.orthogonal >= want.orthogonal_tag && c.orthogonal <= 2.0 * want.orthogonal_tag + 1.0,
        "{c:?}"
    );
}

#[test]
fn dp_schedules_turn_all_ops_global() {
    // Under the data-parallel schedule every operation is executed by all
    // cores: EPOL dp must show R(R+1)/2 global allgathers.
    let r = 8;
    let sys = Bruss2d::new(20);
    let graph = Epol::new(r).step_graph(&sys, 1);
    let sched = parallel_tasks::core::DataParallel::schedule(&graph, 64);
    let c = classify(&graph, &sched);
    let want = census::epol(Version::DataParallel, r);
    assert_eq!(c.global.0, want.global_tag, "{c:?}");
    assert_eq!(c.group.0, 0.0);
}
