//! End-to-end integration tests: specification → scheduling → mapping →
//! simulation, asserting the qualitative shapes of the paper's evaluation.

use parallel_tasks::core::{Cpa, Cpr, DataParallel, LayerScheduler, MappingStrategy};
use parallel_tasks::cost::CostModel;
use parallel_tasks::machine::platforms;
use parallel_tasks::nas::{bt_mz, sp_mz, Class};
use parallel_tasks::ode::{Bruss2d, Epol, Irk, Pabm, Schroed};
use parallel_tasks::sim::Simulator;

fn layered_time(
    graph: &parallel_tasks::mtask::TaskGraph,
    machine: &parallel_tasks::machine::ClusterSpec,
    cores: usize,
    groups: Option<usize>,
    mapping: MappingStrategy,
) -> f64 {
    let spec = machine.with_cores(cores);
    let model = CostModel::new(&spec);
    let mut sched = LayerScheduler::new(&model);
    if let Some(g) = groups {
        sched = sched.with_fixed_groups(g);
    }
    let s = sched.schedule(graph);
    let map = mapping.mapping(&spec, cores);
    Simulator::new(&model)
        .simulate_layered(graph, &s, &map)
        .makespan
}

#[test]
fn task_parallel_beats_data_parallel_for_pabm_dense() {
    let sys = Schroed::new(8000);
    let graph = Pabm::new(8, 2).step_graph(&sys, 2);
    let chic = platforms::chic();
    let spec = chic.with_cores(256);
    let model = CostModel::new(&spec);
    let map = MappingStrategy::Consecutive.mapping(&spec, 256);
    let sim = Simulator::new(&model);
    let tp = LayerScheduler::new(&model)
        .with_fixed_groups(8)
        .schedule(&graph);
    let dp = DataParallel::schedule(&graph, 256);
    let t_tp = sim.simulate_layered(&graph, &tp, &map).makespan;
    let t_dp = sim.simulate_layered(&graph, &dp, &map).makespan;
    assert!(
        t_tp < t_dp,
        "PABM task parallel ({t_tp}) must beat data parallel ({t_dp}) at 256 cores"
    );
}

#[test]
fn consecutive_mapping_wins_for_epol_at_scale() {
    // Fig 15 (bottom right): EPOL favours consecutive; scattered loses.
    let sys = Bruss2d::new(250);
    let graph = Epol::new(8).step_graph(&sys, 2);
    let juropa = platforms::juropa();
    let t_cons = layered_time(&graph, &juropa, 256, Some(4), MappingStrategy::Consecutive);
    let t_scat = layered_time(&graph, &juropa, 256, Some(4), MappingStrategy::Scattered);
    assert!(
        t_cons < t_scat,
        "EPOL: consecutive ({t_cons}) must beat scattered ({t_scat})"
    );
}

#[test]
fn cpr_matches_layer_scheduler_for_symmetric_stages() {
    // Fig 13 (left): CPR finds the task-parallel schedule for PABM.
    let sys = Schroed::new(8000);
    let graph = Pabm::new(8, 2).step_graph(&sys, 2);
    let spec = platforms::chic().with_cores(128);
    let model = CostModel::new(&spec);
    let map = MappingStrategy::Consecutive.mapping(&spec, 128);
    let sim = Simulator::new(&model);
    let layer = LayerScheduler::new(&model).schedule(&graph);
    let t_layer = sim.simulate_layered(&graph, &layer, &map).makespan;
    let cpr = Cpr::new(&model).schedule(&graph);
    let t_cpr = sim.simulate_flat(&graph, &cpr, &map).makespan;
    let ratio = t_cpr / t_layer;
    assert!(
        (0.7..1.3).contains(&ratio),
        "CPR ({t_cpr}) should be close to the layer scheduler ({t_layer})"
    );
}

#[test]
fn cpa_falls_behind_at_high_core_counts() {
    // Fig 13 (left): CPA's over-allocation costs it at scale.
    let sys = Schroed::new(36_000);
    let graph = Pabm::new(8, 2).step_graph(&sys, 2);
    let spec = platforms::chic().with_cores(512);
    let model = CostModel::new(&spec);
    let map = MappingStrategy::Consecutive.mapping(&spec, 512);
    let sim = Simulator::new(&model);
    let layer = LayerScheduler::new(&model).schedule(&graph);
    let t_layer = sim.simulate_layered(&graph, &layer, &map).makespan;
    let cpa = Cpa::new(&model).schedule(&graph);
    let t_cpa = sim.simulate_flat(&graph, &cpa, &map).makespan;
    assert!(
        t_cpa > t_layer * 1.1,
        "CPA ({t_cpa}) should trail the layer scheduler ({t_layer}) at 512 cores"
    );
}

#[test]
fn nas_medium_group_count_is_optimal() {
    // Fig 17: neither g=4 nor g=zones wins; a medium count does.
    let mz = sp_mz(Class::C);
    let spec = platforms::chic().with_cores(256);
    let model = CostModel::new(&spec);
    let sim = Simulator::new(&model);
    let graph = mz.step_graph(2);
    let map = MappingStrategy::Consecutive.mapping(&spec, 256);
    let time = |g: usize| {
        let sched = mz.blocked_schedule(2, 256, g);
        sim.simulate_layered(&graph, &sched, &map).makespan
    };
    let low = time(4);
    let mid = time(64);
    let max = time(256);
    assert!(mid < low, "g=64 ({mid}) must beat g=4 ({low})");
    assert!(mid < max, "g=64 ({mid}) must beat g=256 ({max})");
}

#[test]
fn bt_mz_suffers_load_imbalance_at_max_parallelism() {
    let mz = bt_mz(Class::C);
    let spec = platforms::chic().with_cores(256);
    let model = CostModel::new(&spec);
    let sim = Simulator::new(&model);
    let graph = mz.step_graph(2);
    let map = MappingStrategy::Consecutive.mapping(&spec, 256);
    let sched_mid = mz.blocked_schedule(2, 256, 64);
    let sched_max = mz.blocked_schedule(2, 256, 256);
    let rep_max = sim.simulate_layered(&graph, &sched_max, &map);
    let t_mid = sim.simulate_layered(&graph, &sched_mid, &map).makespan;
    assert!(
        rep_max.makespan > 1.5 * t_mid,
        "one zone per group must hurt BT-MZ"
    );
    // The imbalance is visible as idle time at the layer barrier.
    assert!(rep_max.layers[0].idle_fraction() > 0.3);
}

#[test]
fn hybrid_helps_data_parallel_irk() {
    // Fig 18 (left): fusing each node into one process speeds up the dp
    // version's global collectives.
    use parallel_tasks::core::hybrid::HybridConfig;
    let sys = Bruss2d::new(250);
    let graph = Irk::new(4, 3).step_graph(&sys, 2);
    let chic = platforms::chic();
    let spec = chic.with_cores(512);
    let model = CostModel::new(&spec);
    let map = MappingStrategy::Consecutive.mapping(&spec, 512);
    let dp = DataParallel::schedule(&graph, 512);
    let pure = Simulator::new(&model)
        .simulate_layered(&graph, &dp, &map)
        .makespan;
    let hybrid = Simulator::new(&model)
        .with_hybrid(HybridConfig::per_node(&spec))
        .simulate_layered(&graph, &dp, &map)
        .makespan;
    assert!(
        hybrid < pure,
        "hybrid dp IRK ({hybrid}) must beat pure MPI ({pure})"
    );
}

#[test]
fn g_sweep_picks_a_sensible_group_count_for_irk() {
    // The scheduler's g-sweep should find a task-parallel split for the
    // stage-vector layer (the paper's schedules use K groups).
    let sys = Bruss2d::new(250);
    let irk = Irk::new(4, 3);
    let graph = irk.step_graph(&sys, 1);
    let spec = platforms::chic().with_cores(128);
    let model = CostModel::new(&spec);
    let sched = LayerScheduler::new(&model).schedule(&graph);
    // Find the widest stage layer in the schedule.
    let max_groups = sched.layers.iter().map(|l| l.num_groups()).max().unwrap();
    assert!(
        max_groups > 1 && max_groups <= 4,
        "expected 2..=4 groups for K=4 stages, got {max_groups}"
    );
}

#[test]
fn simulated_speedup_grows_with_cores_for_dense_system() {
    let sys = Schroed::new(8000);
    let graph = Pabm::new(8, 2).step_graph(&sys, 2);
    let chic = platforms::chic();
    let mut prev = f64::INFINITY;
    for cores in [32usize, 64, 128, 256] {
        let t = layered_time(&graph, &chic, cores, Some(8), MappingStrategy::Consecutive);
        assert!(
            t < prev,
            "{cores} cores ({t}) must beat fewer cores ({prev})"
        );
        prev = t;
    }
}

#[test]
fn sequential_work_is_preserved_by_scheduling() {
    // The schedule never duplicates or drops work.
    let sys = Bruss2d::new(100);
    let graph = Epol::new(6).step_graph(&sys, 2);
    let spec = platforms::chic().with_cores(64);
    let model = CostModel::new(&spec);
    let sched = LayerScheduler::new(&model).schedule(&graph);
    let scheduled_work: f64 = sched
        .layers
        .iter()
        .flat_map(|l| l.assignments.iter().flatten())
        .map(|t| graph.task(*t).work)
        .sum();
    assert!((scheduled_work - graph.total_work()).abs() < 1e-6);
}
