//! Integration tests for the scheduling service: cache-key completeness
//! (every schedule-relevant input change must miss) and reply correctness
//! (a cached hit is bit-identical to a freshly computed schedule) over
//! randomly generated task graphs.

use parallel_tasks::core::{LayerScheduler, LayeredSchedule, MappingStrategy};
use parallel_tasks::cost::CostModel;
use parallel_tasks::machine::{ClusterSpec, LinkParams, SpeedProfile};
use parallel_tasks::mtask::{CommOp, EdgeData, MTask, TaskGraph, TaskId};
use parallel_tasks::serve::{CacheStatus, GPolicy, SchedService, ScheduleRequest, ServeConfig};
use parallel_tasks::sim::Simulator;
use proptest::prelude::*;
use std::sync::Arc;

fn toy_cluster(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        name: "prop".into(),
        nodes,
        processors_per_node: 2,
        cores_per_processor: 2,
        core_flops: 1e9,
        speed: SpeedProfile::uniform(),
        intra_processor: LinkParams {
            latency_s: 1e-7,
            bytes_per_s: 8e9,
        },
        intra_node: LinkParams {
            latency_s: 5e-7,
            bytes_per_s: 4e9,
        },
        inter_node: LinkParams {
            latency_s: 2e-6,
            bytes_per_s: 1e9,
        },
        nic_bytes_per_s: 1.2e9,
        shared_memory_across_nodes: false,
    }
}

/// A random layered DAG (same shape as `tests/properties.rs`).
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..5, 1usize..5, any::<u64>()).prop_map(|(depth, width, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut g = TaskGraph::new();
        let mut ranks: Vec<Vec<TaskId>> = Vec::new();
        for d in 0..depth {
            let mut rank = Vec::new();
            for w in 0..width {
                let work = rng.gen_range(1e8..5e9);
                let comm = if rng.gen_bool(0.5) {
                    vec![CommOp::allgather(rng.gen_range(1e3..1e6), 1.0)]
                } else {
                    vec![]
                };
                rank.push(g.add_task(MTask::with_comm(format!("t{d}_{w}"), work, comm)));
            }
            if d > 0 {
                for &t in &rank {
                    let p = ranks[d - 1][rng.gen_range(0..ranks[d - 1].len())];
                    g.add_edge(p, t, EdgeData::replicated(rng.gen_range(8.0..1e6)));
                }
            }
            ranks.push(rank);
        }
        g
    })
}

fn service() -> SchedService {
    SchedService::new(ServeConfig {
        workers: 2,
        sweep_workers: 1,
        cache_capacity: 128,
        tables_per_worker: 8,
        inject_compute_failures: 0,
    })
}

/// The service-free reference: schedule and simulate with a cold table.
fn fresh_compute(req: &ScheduleRequest) -> (LayeredSchedule, f64) {
    let model = CostModel::new(&req.machine);
    let mut scheduler = LayerScheduler::new(&model).with_sweep_workers(1);
    if let Some(g) = req.policy.fixed_groups {
        scheduler = scheduler.with_fixed_groups(g);
    }
    if !req.policy.adjust {
        scheduler = scheduler.without_adjustment();
    }
    if !req.policy.contract_chains {
        scheduler = scheduler.without_chain_contraction();
    }
    let schedule = scheduler.schedule_on(&req.graph, req.total_cores);
    let mapping = req.mapping.mapping(&req.machine, req.total_cores);
    let makespan = Simulator::new(&model)
        .simulate_layered(&req.graph, &schedule, &mapping)
        .makespan;
    (schedule, makespan)
}

/// Changing any schedule-relevant input must miss the cache: a hit after a
/// change would mean the key ignores an input the scheduler reads.
#[test]
fn changed_inputs_always_miss_the_cache() {
    let svc = service();
    let mut g = TaskGraph::new();
    let a = g.add_task(MTask::compute("a", 2e9));
    let b = g.add_task(MTask::compute("b", 3e9));
    g.add_edge(a, b, EdgeData::replicated(1e4));
    let base = ScheduleRequest::new(
        Arc::new(g.clone()),
        Arc::new(toy_cluster(4)),
        MappingStrategy::Consecutive,
    );
    let (_, s) = svc.schedule(base.clone()).expect("base request");
    assert_eq!(s, CacheStatus::Miss);
    let (_, s) = svc.schedule(base.clone()).expect("repeat request");
    assert_eq!(s, CacheStatus::Hit, "unchanged request must hit");

    // Different machine.
    let other_machine = ScheduleRequest::new(
        base.graph.clone(),
        Arc::new(toy_cluster(8)),
        MappingStrategy::Consecutive,
    );
    // Different P on the same machine.
    let mut smaller_p = base.clone();
    smaller_p.total_cores = 8;
    // Different mapping.
    let mut scattered = base.clone();
    scattered.mapping = MappingStrategy::Scattered;
    // Different policy.
    let mut fixed = base.clone();
    fixed.policy = GPolicy {
        fixed_groups: Some(2),
        ..fixed.policy
    };
    // Different graph (one task's work perturbed).
    let mut g2 = g.clone();
    g2.task_mut(a).work += 1.0;
    let mut perturbed = base.clone();
    perturbed.graph = Arc::new(g2);

    for (what, req) in [
        ("machine", other_machine),
        ("total_cores", smaller_p),
        ("mapping", scattered),
        ("policy", fixed),
        ("graph", perturbed),
    ] {
        let (_, status) = svc.schedule(req).expect("changed request");
        assert_eq!(
            status,
            CacheStatus::Miss,
            "changing {what} must miss the schedule cache"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A cached hit is bit-identical to a freshly computed schedule: same
    /// layered structure, same simulated makespan to the last bit.
    #[test]
    fn cached_hit_is_bit_identical_to_fresh_computation(
        graph in arb_graph(),
        nodes in 1usize..5,
        scattered in any::<bool>(),
    ) {
        let mapping = if scattered {
            MappingStrategy::Scattered
        } else {
            MappingStrategy::Consecutive
        };
        let req = ScheduleRequest::new(
            Arc::new(graph),
            Arc::new(toy_cluster(nodes)),
            mapping,
        );
        let svc = service();
        let (computed, s1) = svc.schedule(req.clone()).expect("request");
        prop_assert_eq!(s1, CacheStatus::Miss);
        let (hit, s2) = svc.schedule(req.clone()).expect("request again");
        prop_assert_eq!(s2, CacheStatus::Hit);
        let (fresh_schedule, fresh_makespan) = fresh_compute(&req);
        prop_assert_eq!(&hit.schedule, &computed.schedule);
        prop_assert_eq!(&hit.schedule, &fresh_schedule);
        prop_assert_eq!(hit.makespan.to_bits(), computed.makespan.to_bits());
        prop_assert_eq!(hit.makespan.to_bits(), fresh_makespan.to_bits());
    }
}
