//! Serde round-trips for the persistable types: schedules, reports,
//! platform specs and workloads survive JSON serialisation unchanged, so
//! experiment artefacts can be stored and reloaded.

use parallel_tasks::core::{DataParallel, LayerScheduler, MappingStrategy};
use parallel_tasks::cost::CostModel;
use parallel_tasks::machine::platforms;
use parallel_tasks::nas::{bt_mz, Class};
use parallel_tasks::ode::Epol;
use parallel_tasks::sim::Simulator;

#[test]
fn cluster_spec_roundtrip() {
    for spec in [platforms::chic(), platforms::altix(), platforms::juropa()] {
        let json = serde_json::to_string(&spec).unwrap();
        let back: parallel_tasks::machine::ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}

#[test]
fn task_graph_roundtrip() {
    let sys = parallel_tasks::ode::Bruss2d::new(10);
    let graph = Epol::new(4).step_graph(&sys, 1);
    let json = serde_json::to_string(&graph).unwrap();
    let back: parallel_tasks::mtask::TaskGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), graph.len());
    assert_eq!(back.edge_count(), graph.edge_count());
    for t in graph.task_ids() {
        assert_eq!(back.task(t), graph.task(t));
    }
}

#[test]
fn schedule_roundtrip() {
    let sys = parallel_tasks::ode::Bruss2d::new(10);
    let graph = Epol::new(4).step_graph(&sys, 1);
    let spec = platforms::chic().with_cores(16);
    let model = CostModel::new(&spec);
    let sched = LayerScheduler::new(&model).schedule(&graph);
    let json = serde_json::to_string(&sched).unwrap();
    let back: parallel_tasks::core::LayeredSchedule = serde_json::from_str(&json).unwrap();
    assert_eq!(sched, back);

    let flat = sched.to_symbolic();
    let json = serde_json::to_string(&flat).unwrap();
    let back: parallel_tasks::core::SymbolicSchedule = serde_json::from_str(&json).unwrap();
    assert_eq!(flat, back);
}

#[test]
fn sim_report_roundtrip() {
    let sys = parallel_tasks::ode::Bruss2d::new(10);
    let graph = Epol::new(4).step_graph(&sys, 1);
    let spec = platforms::chic().with_cores(16);
    let model = CostModel::new(&spec);
    let sched = DataParallel::schedule(&graph, 16);
    let map = MappingStrategy::Consecutive.mapping(&spec, 16);
    let report = Simulator::new(&model).simulate_layered(&graph, &sched, &map);
    let json = serde_json::to_string(&report).unwrap();
    let back: parallel_tasks::sim::SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn multizone_roundtrip() {
    let mz = bt_mz(Class::B);
    let json = serde_json::to_string(&mz).unwrap();
    let back: parallel_tasks::nas::MultiZone = serde_json::from_str(&json).unwrap();
    assert_eq!(mz, back);
}

#[test]
fn mapping_roundtrip() {
    let spec = platforms::chic().with_cores(32);
    for s in MappingStrategy::all_for(&spec) {
        let m = s.mapping(&spec, 32);
        let json = serde_json::to_string(&m).unwrap();
        let back: parallel_tasks::core::Mapping = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
