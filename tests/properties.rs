//! Property-based integration tests over randomly generated task graphs,
//! platforms and schedules.

use parallel_tasks::core::{
    adjust_group_sizes, Cpa, Cpr, DataParallel, LayerScheduler, MappingStrategy,
};
use parallel_tasks::cost::{CommContext, CostModel};
use parallel_tasks::machine::{ClusterSpec, CoreId, LinkParams, SpeedProfile};
use parallel_tasks::mtask::{layers, ChainGraph, CommOp, EdgeData, MTask, TaskGraph, TaskId};
use parallel_tasks::sim::Simulator;
use proptest::prelude::*;

/// A random layered DAG: `width` tasks per rank, edges only forward.
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..5, 1usize..5, any::<u64>()).prop_map(|(depth, width, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut g = TaskGraph::new();
        let mut ranks: Vec<Vec<TaskId>> = Vec::new();
        for d in 0..depth {
            let mut rank = Vec::new();
            for w in 0..width {
                let work = rng.gen_range(1e8..5e9);
                let comm = if rng.gen_bool(0.5) {
                    vec![CommOp::allgather(rng.gen_range(1e3..1e6), 1.0)]
                } else {
                    vec![]
                };
                rank.push(g.add_task(MTask::with_comm(format!("t{d}_{w}"), work, comm)));
            }
            if d > 0 {
                for &t in &rank {
                    // Every task depends on at least one earlier task.
                    let p = ranks[d - 1][rng.gen_range(0..ranks[d - 1].len())];
                    g.add_edge(p, t, EdgeData::replicated(rng.gen_range(8.0..1e6)));
                    if rng.gen_bool(0.3) {
                        let p2 = ranks[d - 1][rng.gen_range(0..ranks[d - 1].len())];
                        if p2 != p {
                            g.add_edge(p2, t, EdgeData::replicated(64.0));
                        }
                    }
                }
            }
            ranks.push(rank);
        }
        g
    })
}

fn toy_cluster(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        name: "prop".into(),
        nodes,
        processors_per_node: 2,
        cores_per_processor: 2,
        core_flops: 1e9,
        speed: SpeedProfile::uniform(),
        intra_processor: LinkParams {
            latency_s: 1e-7,
            bytes_per_s: 8e9,
        },
        intra_node: LinkParams {
            latency_s: 5e-7,
            bytes_per_s: 4e9,
        },
        inter_node: LinkParams {
            latency_s: 4e-6,
            bytes_per_s: 1e9,
        },
        nic_bytes_per_s: 1e9,
        shared_memory_across_nodes: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn layer_schedule_is_always_valid(g in arb_graph(), nodes in 1usize..6) {
        let spec = toy_cluster(nodes);
        let model = CostModel::new(&spec);
        let sched = LayerScheduler::new(&model).schedule(&g);
        prop_assert!(sched.validate().is_ok());
        // Every non-structural task appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for l in &sched.layers {
            for t in l.assignments.iter().flatten() {
                prop_assert!(seen.insert(*t));
            }
        }
        for t in g.task_ids() {
            if !g.task(t).is_structural() {
                prop_assert!(seen.contains(&t), "missing {t:?}");
            }
        }
        // Flattened form passes the precedence check too.
        prop_assert!(sched.to_symbolic().validate(&g).is_ok());
    }

    #[test]
    fn baseline_schedules_are_always_valid(g in arb_graph(), nodes in 1usize..4) {
        let spec = toy_cluster(nodes);
        let model = CostModel::new(&spec);
        prop_assert!(Cpa::new(&model).schedule(&g).validate(&g).is_ok());
        prop_assert!(Cpr::new(&model).schedule(&g).validate(&g).is_ok());
    }

    #[test]
    fn mappings_are_bijections(nodes in 1usize..8) {
        let spec = toy_cluster(nodes);
        for s in MappingStrategy::all_for(&spec) {
            let mut seq = s.core_sequence(&spec);
            prop_assert_eq!(seq.len(), spec.total_cores());
            seq.sort_unstable();
            seq.dedup();
            prop_assert_eq!(seq.len(), spec.total_cores());
        }
    }

    #[test]
    fn adjustment_preserves_totals(work in prop::collection::vec(0.0f64..100.0, 1..10),
                                   extra in 0usize..64) {
        let total = work.len() + extra;
        let sizes = adjust_group_sizes(&work, total);
        prop_assert_eq!(sizes.iter().sum::<usize>(), total);
        // Positive-work groups never starve.
        for (w, s) in work.iter().zip(&sizes) {
            if *w > 0.0 {
                prop_assert!(*s >= 1);
            }
        }
    }

    #[test]
    fn chain_contraction_preserves_work_and_acyclicity(g in arb_graph()) {
        let cg = ChainGraph::contract(&g);
        let rel = (cg.graph.total_work() - g.total_work()).abs() / g.total_work().max(1.0);
        prop_assert!(rel < 1e-12, "relative work drift {rel}");
        prop_assert_eq!(cg.graph.topo_order().len(), cg.graph.len());
        let total: usize = cg.members.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.len());
    }

    #[test]
    fn layers_partition_topologically(g in arb_graph()) {
        let ls = layers(&g);
        let mut layer_of = std::collections::HashMap::new();
        for (k, layer) in ls.iter().enumerate() {
            for &t in layer {
                layer_of.insert(t, k);
            }
        }
        for (a, b, _) in g.edges() {
            prop_assert!(layer_of[&a] < layer_of[&b]);
        }
    }

    #[test]
    fn simulation_is_deterministic(g in arb_graph(), nodes in 1usize..5) {
        let spec = toy_cluster(nodes);
        let model = CostModel::new(&spec);
        let sim = Simulator::new(&model);
        let sched = LayerScheduler::new(&model).schedule(&g);
        let map = MappingStrategy::Consecutive.mapping(&spec, spec.total_cores());
        let a = sim.simulate_layered(&g, &sched, &map);
        let b = sim.simulate_layered(&g, &sched, &map);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn data_parallel_never_reorders_dependences(g in arb_graph(), nodes in 1usize..5) {
        let spec = toy_cluster(nodes);
        let model = CostModel::new(&spec);
        let sim = Simulator::new(&model);
        let dp = DataParallel::schedule(&g, spec.total_cores());
        let map = MappingStrategy::Consecutive.mapping(&spec, spec.total_cores());
        let rep = sim.simulate_layered(&g, &dp, &map);
        for (a, b, _) in g.edges() {
            if g.task(a).is_structural() || g.task(b).is_structural() {
                continue;
            }
            let ta = rep.task(a).unwrap();
            let tb = rep.task(b).unwrap();
            prop_assert!(tb.start >= ta.finish - 1e-12);
        }
    }

    #[test]
    fn makespan_bounded_below_by_critical_compute(g in arb_graph(), nodes in 1usize..5) {
        // No schedule can beat the critical path of pure compute at full
        // machine width.
        let spec = toy_cluster(nodes);
        let model = CostModel::new(&spec);
        let sim = Simulator::new(&model);
        let p = spec.total_cores() as f64;
        let bound: f64 = {
            let tl = g.top_levels(|t| spec.compute_time(g.task(t).work) / p);
            tl.iter().copied().fold(0.0, f64::max)
        };
        let sched = LayerScheduler::new(&model).schedule(&g);
        let map = MappingStrategy::Consecutive.mapping(&spec, spec.total_cores());
        let rep = sim.simulate_layered(&g, &sched, &map);
        prop_assert!(rep.makespan >= bound * 0.999, "{} < {}", rep.makespan, bound);
    }

    #[test]
    fn unit_speed_profile_is_bit_identical_to_the_homogeneous_path(
        g in arb_graph(), nodes in 1usize..5
    ) {
        // A machine whose speed profile is *explicitly* all ones must be
        // indistinguishable — to the bit — from one that never mentions
        // speeds: same costs, same schedules, same simulated reports.
        // This pins the heterogeneity refactor to its contract that
        // homogeneous machines take the exact pre-refactor code path.
        let plain = toy_cluster(nodes);
        let cpn = plain.cores_per_node();
        let p = plain.total_cores();
        let m0 = CostModel::new(&plain);
        for explicit in [
            plain.with_speed(SpeedProfile::with_node_factors(vec![1.0; nodes])),
            plain.with_speed(SpeedProfile::with_core_factors(vec![1.0; cpn])),
        ] {
            prop_assert!(explicit.is_uniform());
            let m1 = CostModel::new(&explicit);
            prop_assert_eq!(m1.num_classes(), 1);
            // Costs, bit for bit, at several widths.
            let ctx = CommContext::uniform(&plain);
            for t in g.task_ids() {
                let task = g.task(t);
                for q in [1usize, cpn, p] {
                    let cores: Vec<CoreId> = (0..q).map(CoreId).collect();
                    prop_assert_eq!(
                        m0.task_time(&ctx, task, &cores).to_bits(),
                        m1.task_time(&ctx, task, &cores).to_bits()
                    );
                }
            }
            // Schedules and simulated reports across every mapping.
            let s0 = LayerScheduler::new(&m0).schedule(&g);
            let s1 = LayerScheduler::new(&m1).schedule(&g);
            prop_assert_eq!(&s0, &s1);
            for strategy in MappingStrategy::all_for(&plain) {
                let map = strategy.mapping(&plain, p);
                let r0 = Simulator::new(&m0).simulate_layered(&g, &s0, &map);
                let r1 = Simulator::new(&m1).simulate_layered(&g, &s1, &map);
                prop_assert_eq!(r0, r1);
            }
        }
    }
}
