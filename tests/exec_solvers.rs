#![allow(clippy::single_range_in_vec_init)] // worker-group layouts

//! Integration tests of the shared-memory runtime: every solver's SPMD
//! implementation must reproduce its sequential reference bit-for-bit
//! (same arithmetic, different workers), across group layouts.

use parallel_tasks::exec::{DataStore, Team};
use parallel_tasks::ode::pab::{startup, state_to_store, store_to_state};
use parallel_tasks::ode::{max_err, Bruss2d, Diirk, Epol, Irk, OdeSystem, Pab, Pabm};
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

fn store_with_state(y0: &[f64], h: f64) -> Arc<DataStore> {
    let store = DataStore::new();
    store.put("t", vec![0.0]);
    store.put("h", vec![h]);
    store.put("eta", y0.to_vec());
    store
}

#[test]
fn epol_spmd_equals_sequential_across_layouts() {
    let sys_c = Bruss2d::new(6);
    let y0 = sys_c.initial_value();
    let e = Epol::new(4);
    let h = 2e-4;
    let mut seq = y0.clone();
    let mut t = 0.0;
    for _ in 0..3 {
        seq = e.step(&sys_c, t, &seq, h);
        t += h;
    }
    let sys: Arc<dyn OdeSystem> = Arc::new(sys_c);
    for layout in [vec![0..4], vec![0..2, 2..4], vec![0..1, 1..2, 2..3, 3..4]] {
        let team = Team::new(4);
        let store = store_with_state(&y0, h);
        e.run_spmd(&team, &sys, &layout, &store, 3).unwrap();
        let eta = store.get("eta").unwrap();
        assert!(
            max_err(&eta, &seq) < 1e-12,
            "layout {layout:?}: err {}",
            max_err(&eta, &seq)
        );
    }
}

#[test]
fn irk_spmd_equals_sequential_across_layouts() {
    let sys_c = Bruss2d::new(5);
    let y0 = sys_c.initial_value();
    let irk = Irk::new(4, 3);
    let h = 5e-4;
    let mut seq = y0.clone();
    let mut t = 0.0;
    for _ in 0..2 {
        seq = irk.step(&sys_c, t, &seq, h);
        t += h;
    }
    let sys: Arc<dyn OdeSystem> = Arc::new(sys_c);
    for layout in [vec![0..3], vec![0..2, 2..3]] {
        let team = Team::new(3);
        let store = store_with_state(&y0, h);
        irk.run_spmd(&team, &sys, &layout, &store, 2).unwrap();
        assert!(max_err(&store.get("eta").unwrap(), &seq) < 1e-12);
    }
}

#[test]
fn diirk_spmd_equals_sequential() {
    let sys_c = Bruss2d::new(4);
    let y0 = sys_c.initial_value();
    let d = Diirk::new(3, 2);
    let h = 5e-4;
    let mut seq = y0.clone();
    let mut t = 0.0;
    for _ in 0..2 {
        seq = d.step(&sys_c, t, &seq, h);
        t += h;
    }
    let sys: Arc<dyn OdeSystem> = Arc::new(sys_c);
    let team = Team::new(3);
    let store = store_with_state(&y0, h);
    let counter = Arc::new(AtomicUsize::new(0));
    let program = d.build_program(&sys, &[0..1, 1..2, 2..3], counter);
    for _ in 0..2 {
        team.run(&program, &store).unwrap();
    }
    assert!(max_err(&store.get("eta").unwrap(), &seq) < 1e-11);
}

#[test]
fn pab_and_pabm_spmd_equal_sequential() {
    let sys_c = Bruss2d::new(4);
    let y0 = sys_c.initial_value();
    let h = 4e-4;
    let sys: Arc<dyn OdeSystem> = Arc::new(sys_c.clone());

    let pab = Pab::new(4);
    let st0 = startup(&sys_c, 0.0, &y0, h, 4);
    let mut seq = st0.clone();
    for _ in 0..2 {
        seq = pab.step(&sys_c, &seq);
    }
    let team = Team::new(4);
    let store = DataStore::new();
    state_to_store(&st0, &store);
    pab.run_spmd(&team, &sys, &[0..2, 2..4], &store, 2).unwrap();
    let got = store_to_state(&store, 4);
    assert!(
        max_err(&got.y, &seq.y) < 1e-12,
        "PAB err {}",
        max_err(&got.y, &seq.y)
    );

    let pabm = Pabm::new(4, 2);
    let mut seq = st0.clone();
    for _ in 0..2 {
        seq = pabm.step(&sys_c, &seq);
    }
    let store = DataStore::new();
    state_to_store(&st0, &store);
    pabm.run_spmd(&team, &sys, &[0..1, 1..2, 2..3, 3..4], &store, 2)
        .unwrap();
    let got = store_to_state(&store, 4);
    assert!(
        max_err(&got.y, &seq.y) < 1e-12,
        "PABM err {}",
        max_err(&got.y, &seq.y)
    );
    for j in 0..4 {
        assert!(max_err(&got.f_prev[j], &seq.f_prev[j]) < 1e-12);
    }
}

#[test]
fn all_solvers_agree_with_each_other_on_smooth_problem() {
    // Cross-validation: five independent methods must converge to the same
    // trajectory on a smooth problem with small steps.
    let sys = Bruss2d::new(5);
    let y0 = sys.initial_value();
    let t_end = 4e-3;
    let h = 1e-3;

    let e = Epol::new(5).integrate(&sys, 0.0, &y0, t_end, h);
    let i = Irk::new(3, 6).integrate(&sys, 0.0, &y0, t_end, h);
    let (d, _) = Diirk::new(3, 5).integrate(&sys, 0.0, &y0, t_end, h);
    let (_, p) = Pab::new(4).integrate(&sys, 0.0, &y0, t_end, h);
    let (_, pm) = Pabm::new(4, 2).integrate(&sys, 0.0, &y0, t_end, h);

    assert!(max_err(&e, &i) < 1e-8, "EPOL vs IRK: {}", max_err(&e, &i));
    assert!(max_err(&i, &d) < 1e-8, "IRK vs DIIRK: {}", max_err(&i, &d));
    assert!(max_err(&e, &p) < 1e-6, "EPOL vs PAB: {}", max_err(&e, &p));
    assert!(
        max_err(&e, &pm) < 1e-7,
        "EPOL vs PABM: {}",
        max_err(&e, &pm)
    );
}
