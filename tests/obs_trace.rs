//! Integration tests for the observability subsystem: the Chrome-trace
//! export schema (golden file), pid/tid conventions across the executor,
//! scheduler and simulator rows, and the nesting discipline of recorded
//! spans.
//!
//! The golden file pins the *simulated* trace of a tiny three-task program
//! — simulation is deterministic, so the export must match byte for byte.
//! Regenerate after an intentional schema change with
//! `UPDATE_GOLDEN=1 cargo test --test obs_trace`.

use proptest::prelude::*;
use pt_core::{LayerScheduler, MappingStrategy};
use pt_cost::CostModel;
use pt_exec::{DataStore, GroupPlan, Program, RunOptions, TaskCtx, TaskFn, Team, EXEC_PID};
use pt_machine::platforms;
use pt_mtask::{MTask, Spec, TaskGraph};
use pt_obs::{ChromeTrace, TraceEvent, TraceProbe, TraceRecorder};
use std::sync::Arc;
use std::time::Duration;

/// The tiny three-task program of the golden file: two parallel stages
/// feeding a combine.
fn tiny_graph() -> TaskGraph {
    Spec::seq(vec![
        Spec::parfor(0..2, |i| Spec::task(MTask::compute(format!("a{i}"), 1e9))),
        Spec::task(MTask::compute("b", 5e8)),
    ])
    .compile_flat()
}

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/tiny_trace.json");

#[test]
fn simulated_trace_matches_golden_file() {
    let spec = platforms::chic().with_nodes(2);
    let model = CostModel::new(&spec);
    let graph = tiny_graph();
    let sched = LayerScheduler::new(&model).schedule(&graph);
    let mapping = MappingStrategy::Consecutive.mapping(&spec, spec.total_cores());
    let report = pt_sim::Simulator::new(&model).simulate_layered(&graph, &sched, &mapping);
    let json = pt_sim::chrome_trace(&graph, &sched, &report, &mapping, &spec).to_json();

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &json).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        json, golden,
        "simulated Chrome-trace export drifted from tests/golden/tiny_trace.json; \
         if the schema change is intentional, regenerate with UPDATE_GOLDEN=1"
    );

    // The golden trace itself honours the schema: parses, spans carry
    // `dur`, rows use the simulator's pid convention (1000 + node).
    let probe = TraceProbe::parse(&golden).unwrap();
    assert!(probe.event_count() > 0);
    for ev in &probe.traceEvents {
        assert!(ev.ts >= 0.0, "negative timestamp in {}", ev.name);
        if ev.ph != "M" {
            assert_eq!(ev.ph, "X", "simulated events are complete spans");
            assert!(ev.pid >= pt_sim::SIM_PID_BASE as u64);
            assert!(ev.tid < spec.total_cores() as u64);
        }
    }
}

/// A body that spins briefly so spans have measurable extent.
fn spin_task(us: u64) -> Arc<TaskFn> {
    Arc::new(move |_ctx: &TaskCtx| {
        let end = std::time::Instant::now() + Duration::from_micros(us);
        while std::time::Instant::now() < end {
            std::hint::spin_loop();
        }
    })
}

#[test]
fn executed_trace_uses_exec_pid_and_worker_tids() {
    let workers = 2;
    let recorder = Arc::new(TraceRecorder::for_team(workers));
    let team = Team::new(workers);
    let store = DataStore::new();
    // Three tasks: two one-core groups in layer 0, one two-core group in
    // layer 1.
    let mut program = Program::single_layer(vec![
        GroupPlan::new(0..1, vec![spin_task(200)]),
        GroupPlan::new(1..2, vec![spin_task(200)]),
    ]);
    program.push_layer(vec![GroupPlan::new(0..2, vec![spin_task(200)])]);
    let opts = RunOptions::default().with_recorder(recorder.clone());
    team.run_with(&program, &store, &opts).unwrap();
    drop((team, opts));

    let mut recorder = Arc::try_unwrap(recorder).expect("recorder handles released");
    let events = recorder.drain();
    let tasks: Vec<&TraceEvent> = events.iter().filter(|e| e.cat == "task").collect();
    // 2 single-rank groups + 1 two-rank group = 4 task spans.
    assert_eq!(tasks.len(), 4);
    for ev in &events {
        assert_eq!(ev.pid, EXEC_PID);
        assert!(
            ev.tid <= workers as u32,
            "tid {} beyond worker/driver rows",
            ev.tid
        );
    }
    // The export parses and keeps every event.
    let mut trace = ChromeTrace::new();
    trace.extend(events.clone());
    let probe = TraceProbe::parse(&trace.to_json()).unwrap();
    assert_eq!(probe.event_count(), events.len());
}

/// Check the span-nesting discipline on one (pid, tid) lane: every span has
/// `start <= finish`, and spans recorded by one sequential thread never
/// overlap.
fn assert_lane_discipline(events: &[TraceEvent]) {
    let mut lanes: std::collections::BTreeMap<(u32, u32), Vec<&TraceEvent>> = Default::default();
    for ev in events.iter().filter(|e| e.dur_us > 0.0 || e.cat == "task") {
        lanes.entry((ev.pid, ev.tid)).or_default().push(ev);
    }
    for ((pid, tid), mut lane) in lanes {
        lane.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
        let mut prev_end = f64::NEG_INFINITY;
        for ev in lane {
            assert!(
                ev.dur_us >= 0.0,
                "span {} on ({pid},{tid}) runs backwards",
                ev.name
            );
            assert!(
                ev.ts_us >= prev_end - 1e-3,
                "span {} on ({pid},{tid}) starts at {} before previous span ends at {prev_end}",
                ev.name,
                ev.ts_us
            );
            prev_end = prev_end.max(ev.end_us());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random layer/group shapes executed with recording on: spans on any
    /// one worker lane nest properly — start ≤ finish, no overlap (each
    /// worker is a sequential thread, so its spans must serialise).
    #[test]
    fn recorded_spans_nest_per_worker_lane(
        shape_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(shape_seed);
        let workers = rng.gen_range(2..5usize);
        let layers = rng.gen_range(1..4usize);

        let mut program: Option<Program> = None;
        for _ in 0..layers {
            // Split `workers` cores into 1..=workers contiguous groups,
            // each with 1..=2 tasks.
            let mut groups = Vec::new();
            let mut start = 0;
            while start < workers {
                let width = rng.gen_range(1..=workers - start);
                let tasks = (0..rng.gen_range(1..3usize))
                    .map(|_| spin_task(rng.gen_range(20..200)))
                    .collect();
                groups.push(GroupPlan::new(start..start + width, tasks));
                start += width;
            }
            match program.as_mut() {
                None => program = Some(Program::single_layer(groups)),
                Some(p) => {
                    p.push_layer(groups);
                }
            }
        }
        let program = program.unwrap();

        let recorder = Arc::new(TraceRecorder::for_team(workers));
        let team = Team::new(workers);
        let store = DataStore::new();
        let opts = RunOptions::default().with_recorder(recorder.clone());
        team.run_with(&program, &store, &opts).unwrap();
        drop((team, opts));

        let mut recorder = Arc::try_unwrap(recorder).expect("recorder handles released");
        let events = recorder.drain();
        prop_assert!(!events.is_empty());
        assert_lane_discipline(&events);
    }

    /// Simulated traces obey the same discipline: each core row of the
    /// node×core grid holds non-overlapping spans within the makespan.
    #[test]
    fn simulated_spans_nest_per_core_row(nodes in 1..4usize, k in 1..5usize) {
        let spec = platforms::chic().with_nodes(nodes);
        let model = CostModel::new(&spec);
        let graph = Spec::seq(vec![
            Spec::parfor(0..k, |i| Spec::task(MTask::compute(format!("s{i}"), 1e9))),
            Spec::task(MTask::compute("combine", 5e8)),
        ])
        .compile_flat();
        let sched = LayerScheduler::new(&model).schedule(&graph);
        let mapping = MappingStrategy::Consecutive.mapping(&spec, spec.total_cores());
        let report = pt_sim::Simulator::new(&model).simulate_layered(&graph, &sched, &mapping);
        let events = pt_sim::chrome_events(&graph, &sched, &report, &mapping, &spec);
        prop_assert!(!events.is_empty());
        assert_lane_discipline(&events);
        for ev in &events {
            prop_assert!(ev.end_us() <= report.makespan * 1e6 + 1e-6);
        }
    }
}
