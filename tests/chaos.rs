#![allow(clippy::single_range_in_vec_init)] // worker-group layouts

//! Chaos-style integration tests of the fail-slow tolerance machinery:
//! randomized fail-slow campaigns under deadline-enabled runs, hedged
//! solver runs that must stay bit-identical to fault-free execution, the
//! global watchdog's bounded unwedging, and a guard proving that a silent
//! stall *without* the watchdog genuinely wedges (so the chaos gate tests
//! something real).

use proptest::prelude::*;
use pt_exec::{
    ChaosConfig, DataStore, DeadlinePolicy, ExecError, FaultPlan, GroupPlan, Program, RetryPolicy,
    RunOptions, Snapshot, TaskCtx, TaskFn, Team,
};
use pt_obs::{keys, TraceRecorder};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Generous bound for "completes in bounded time".
const WATCHDOG: Duration = Duration::from_secs(30);

fn bounded<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(WATCHDOG)
        .expect("run did not complete in bounded time — wedge?")
}

/// A two-layer, four-worker program whose results are independent of the
/// group layout (collectives reduce identical values, rank 0 publishes
/// constants), so retries, shrink-and-continue replans, and committed
/// hedges must all reproduce the fault-free store bit-for-bit.
fn layout_free_program() -> Program {
    let work = |out: &'static str| -> Arc<TaskFn> {
        Arc::new(move |ctx: &TaskCtx| {
            std::thread::sleep(Duration::from_millis(1));
            let v = ctx.comm.allreduce_max_scalar(ctx.rank, 2.5);
            if ctx.rank == 0 {
                ctx.store.put(out, vec![v; 16]);
            }
        })
    };
    let mut p = Program::single_layer(vec![
        GroupPlan::new(0..2, vec![work("a")]),
        GroupPlan::new(2..4, vec![work("b")]),
    ]);
    p.push_layer(vec![GroupPlan::new(0..4, vec![work("c")])]);
    p
}

fn reference_snapshot(program: &Program) -> Snapshot {
    let team = Team::new(4);
    let store = DataStore::new();
    team.run(program, &store).expect("fault-free run");
    store.snapshot()
}

fn fail_slow_policy(layers: usize) -> DeadlinePolicy {
    DeadlinePolicy::from_budgets(vec![Duration::from_millis(5); layers])
        .with_slack(1.0)
        .with_min_deadline(Duration::from_millis(20))
        .with_dead_after(Duration::from_millis(50))
        .with_poll(Duration::from_millis(2))
        .with_global_timeout(Some(Duration::from_secs(20)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any fail-slow-only campaign (delays, slowdowns, silent stalls — no
    /// crashes) must complete under a deadline-enabled run and leave the
    /// store bit-identical to fault-free execution: stragglers get hedged,
    /// corpses get demoted, and the replanned survivors finish the job.
    #[test]
    fn fail_slow_campaigns_complete_bit_equal(seed in any::<u64>()) {
        let program = layout_free_program();
        let reference = reference_snapshot(&program);
        let cfg = ChaosConfig {
            fail_stop: false,
            ..ChaosConfig::new(program.layers.len(), 4)
        };
        let faults = FaultPlan::chaos(seed, &cfg);
        prop_assert!(faults.is_fail_slow_only());
        let snapshot = bounded(move || {
            let team = Team::new(4);
            let store = DataStore::new();
            let opts = RunOptions {
                retry: RetryPolicy::attempts(6).with_backoff(Duration::from_millis(1)),
                faults: faults.clone(),
                recorder: None,
                deadline: Some(fail_slow_policy(program.layers.len())),
                resize: None,
            };
            team.run_with(&program, &store, &opts)
                .unwrap_or_else(|e| panic!("seed {seed}: {e} (faults {:?})", faults.actions()));
            store.snapshot()
        });
        prop_assert_eq!(snapshot, reference, "seed {} diverged", seed);
    }
}

/// Hedged runs of all five ODE solvers must be bit-identical to their
/// fault-free runs: a straggling rank is raced by a speculative duplicate
/// whose committed overlay carries exactly the numbers the straggler would
/// have produced (deterministic task bodies, first-finisher-wins).
#[test]
fn hedged_solver_runs_are_bit_identical_across_all_five_solvers() {
    use parallel_tasks::ode::pab::{startup, state_to_store};
    use parallel_tasks::ode::{Bruss2d, Diirk, Epol, Irk, OdeSystem, Pab, Pabm};
    use std::sync::atomic::AtomicUsize;

    let sys_c = Bruss2d::new(4);
    let y0 = sys_c.initial_value();
    let h = 4e-4;
    let sys: Arc<dyn OdeSystem> = Arc::new(sys_c.clone());
    let st0 = startup(&sys_c, 0.0, &y0, h, 4);

    // (name, workers, program, store seeder)
    type Seeder = Box<dyn Fn(&Arc<DataStore>)>;
    let state_seeder = |y0: Vec<f64>| -> Seeder {
        Box::new(move |store: &Arc<DataStore>| {
            store.put("t", vec![0.0]);
            store.put("h", vec![h]);
            store.put("eta", y0.clone());
        })
    };
    let pab_seeder = |st: parallel_tasks::ode::pab::BlockState| -> Seeder {
        Box::new(move |store: &Arc<DataStore>| state_to_store(&st, store))
    };
    let cases: Vec<(&str, usize, Program, Seeder)> = vec![
        (
            "epol",
            4,
            Epol::new(4).build_program(&sys, &[0..2, 2..4]),
            state_seeder(y0.clone()),
        ),
        (
            "irk",
            3,
            Irk::new(4, 3).build_program(&sys, &[0..2, 2..3]),
            state_seeder(y0.clone()),
        ),
        (
            "diirk",
            3,
            Diirk::new(3, 2).build_program(
                &sys,
                &[0..1, 1..2, 2..3],
                Arc::new(AtomicUsize::new(0)),
            ),
            state_seeder(y0.clone()),
        ),
        (
            "pab",
            4,
            Pab::new(4).build_program(&sys, &[0..2, 2..4]),
            pab_seeder(st0.clone()),
        ),
        (
            "pabm",
            4,
            Pabm::new(4, 2).build_program(&sys, &[0..2, 2..4]),
            pab_seeder(st0.clone()),
        ),
    ];

    for (name, workers, program, seed_store) in cases {
        // Fault-free reference: two macro steps.
        let reference = bounded({
            let program = program.clone();
            let store = DataStore::new();
            seed_store(&store);
            move || {
                let team = Team::new(workers);
                team.run(&program, &store).unwrap();
                team.run(&program, &store).unwrap();
                store.snapshot()
            }
        });

        // Hedged run: rank 1 is delayed past the deadline floor and slowed,
        // so the monitor classifies it straggler and races a hedge.
        let store = DataStore::new();
        seed_store(&store);
        let (snapshot, spawned) = bounded({
            let program = program.clone();
            move || {
                let recorder = Arc::new(TraceRecorder::for_team(workers));
                let team = Team::new(workers);
                let opts = RunOptions {
                    faults: FaultPlan::new()
                        .delay(0, 1, Duration::from_millis(40))
                        .slow_by(0, 1, 8.0),
                    deadline: Some(
                        DeadlinePolicy::from_budgets(vec![
                            Duration::from_millis(2);
                            program.layers.len()
                        ])
                        .with_slack(1.0)
                        .with_min_deadline(Duration::from_millis(10))
                        // Never classify the straggler dead: hedging only.
                        .with_dead_after(Duration::from_secs(30))
                        .with_poll(Duration::from_millis(2))
                        .with_global_timeout(Some(Duration::from_secs(20))),
                    ),
                    ..RunOptions::default()
                }
                .with_recorder(recorder.clone());
                team.run_with(&program, &store, &opts).unwrap();
                team.run(&program, &store).unwrap(); // second step fault-free
                let spawned = recorder
                    .metrics()
                    .snapshot()
                    .counter(keys::HEDGES_SPAWNED)
                    .unwrap_or(0);
                (store.snapshot(), spawned)
            }
        });
        assert!(
            spawned >= 1,
            "{name}: the delayed straggler must trigger at least one hedge"
        );
        assert_eq!(
            snapshot, reference,
            "{name}: hedged run diverged from fault-free bits"
        );
    }
}

/// With per-layer deadlines disabled, a silent stall can only be broken by
/// the global watchdog — which must fire, name the culprit, and return in
/// bounded time.
#[test]
fn global_watchdog_is_the_last_line_of_defence() {
    let (err, elapsed, alive) = bounded(|| {
        let team = Team::new(4);
        let store = DataStore::new();
        let program = layout_free_program();
        let opts = RunOptions {
            faults: FaultPlan::new().stall_at(0, 2, 1),
            deadline: Some(DeadlinePolicy::watchdog(Duration::from_millis(300))),
            ..RunOptions::default()
        };
        let t0 = Instant::now();
        let err = team.run_with(&program, &store, &opts).unwrap_err();
        (err, t0.elapsed(), team.alive_workers())
    });
    match err {
        ExecError::WatchdogTimeout { layer, stalled } => {
            assert_eq!(layer, 0);
            assert!(stalled.contains(&2), "stalled {stalled:?} must name rank 2");
            // The genuinely stalled rank is always demoted; peers reported
            // alongside it (still mid-layer at firing time) are demoted
            // unless they moved on before the CAS — so the loss count is
            // between 1 and the reported stall set.
            assert!(
                (4 - stalled.len()..=3).contains(&alive),
                "alive {alive} vs stalled {stalled:?}"
            );
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "unwedging took {elapsed:?}"
    );
}

/// The guard that keeps the chaos gate honest: a silent stall with NO
/// deadline policy genuinely wedges the run — if this ever starts
/// completing, `Stall` no longer models fail-slow and the watchdog tests
/// above are testing nothing.
#[test]
fn stall_without_watchdog_wedges_the_run() {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let team = Team::new(2);
        let store = DataStore::new();
        let task: Arc<TaskFn> = Arc::new(|_ctx: &TaskCtx| {});
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![task])]);
        let opts = RunOptions {
            faults: FaultPlan::new().stall_at(0, 1, 1),
            ..RunOptions::default()
        };
        let _ = tx.send(team.run_with(&program, &store, &opts));
        // Unreachable while Stall models fail-slow; the thread (and the
        // stalled team it owns) is abandoned when the test binary exits.
    });
    assert!(
        rx.recv_timeout(Duration::from_millis(1500)).is_err(),
        "a silent stall must wedge a run that has no watchdog"
    );
}
