//! Integration tests for the fault-tolerant execution path: abortable
//! collectives, typed errors, layer-granular retry with `DataStore`
//! rollback, and shrink-and-continue after permanent worker loss.
//!
//! Every scenario that could historically wedge the team (panic while peers
//! are blocked inside a collective) is run under a watchdog so a regression
//! shows up as a test failure, not a hung CI job.

use pt_exec::{
    DataStore, ExecError, FaultPlan, GroupPlan, Program, RetryPolicy, RunOptions, TaskCtx, TaskFn,
    Team,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Generous bound for "completes in bounded time": these programs finish in
/// milliseconds when healthy, so hitting this means a deadlock.
const WATCHDOG: Duration = Duration::from_secs(30);

/// Run `f` on a helper thread and fail the test if it does not finish
/// within [`WATCHDOG`].
fn bounded<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(WATCHDOG)
        .expect("run did not complete in bounded time — collective wedge?")
}

/// A task that drags every rank of its group through a collective, then has
/// rank 0 publish the group sum of `rank + 1`.
fn allreduce_task(out: &'static str) -> Arc<TaskFn> {
    Arc::new(move |ctx: &TaskCtx| {
        let mut v = vec![ctx.rank as f64 + 1.0];
        ctx.comm.allreduce_sum(ctx.rank, &mut v);
        if ctx.rank == 0 {
            ctx.store.put(out, v);
        }
    })
}

#[test]
fn panic_inside_collective_returns_typed_error_in_bounded_time() {
    let (team, err) = bounded(|| {
        let team = Team::new(4);
        let store = DataStore::new();
        // One group of 4; the injected panic hits rank 1 before its task
        // runs, while ranks 0, 2, 3 block inside the allreduce.  Without
        // abortable collectives this deadlocks.
        let program = Program::single_layer(vec![GroupPlan::new(0..4, vec![allreduce_task("s")])]);
        let opts = RunOptions {
            faults: FaultPlan::new().panic_at(0, 1, 1),
            ..RunOptions::default()
        };
        let err = team.run_with(&program, &store, &opts).unwrap_err();
        (team, err)
    });
    match err {
        ExecError::TaskPanicked {
            layer,
            group,
            payload,
        } => {
            assert_eq!(layer, 0);
            assert_eq!(group, 0);
            assert!(payload.contains("injected panic"), "payload: {payload}");
        }
        other => panic!("expected TaskPanicked, got {other:?}"),
    }

    // The same team completes a subsequent fault-free run.
    bounded(move || {
        let store = DataStore::new();
        let program = Program::single_layer(vec![GroupPlan::new(0..4, vec![allreduce_task("s")])]);
        team.run(&program, &store).unwrap();
        assert_eq!(store.get("s").unwrap(), vec![10.0]); // 1+2+3+4
    });
}

#[test]
fn panic_in_sibling_group_does_not_wedge_other_groups() {
    bounded(|| {
        let team = Team::new(4);
        let store = DataStore::new();
        let program = Program::single_layer(vec![
            GroupPlan::new(0..2, vec![allreduce_task("a")]),
            GroupPlan::new(2..4, vec![allreduce_task("b")]),
        ]);
        // Rank 3 = rank 1 of the second group; the first group is healthy
        // and must still reach the layer barrier for the run to finish.
        let opts = RunOptions {
            faults: FaultPlan::new().panic_at(0, 3, 1),
            ..RunOptions::default()
        };
        let err = team.run_with(&program, &store, &opts).unwrap_err();
        assert!(
            matches!(
                err,
                ExecError::TaskPanicked {
                    layer: 0,
                    group: 1,
                    ..
                }
            ),
            "got {err:?}"
        );
        // The healthy group's result was produced before the failure was
        // reported (same layer, different communicator).
        assert_eq!(store.get("a").unwrap(), vec![3.0]);
    });
}

#[test]
fn retry_rolls_back_store_and_matches_fault_free_run() {
    // Layer 0 publishes a base array; layer 1 mutates it (pre-collective)
    // and then fails twice.  Under a 3-attempt policy the third attempt
    // succeeds, and rollback must have undone the two partial mutations:
    // the final store equals the fault-free run's store exactly.
    fn build_program() -> Program {
        let init: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            if ctx.rank == 0 {
                ctx.store.put("acc", vec![0.0]);
            }
        });
        let bump: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            if ctx.rank == 1 {
                // Partial effect before the group synchronises: visible in
                // the store even on attempts where rank 0 panics.
                let mut acc = ctx.store.get("acc").unwrap();
                acc[0] += 1.0;
                ctx.store.put("acc", acc);
            }
            ctx.comm.barrier();
        });
        let mut p = Program::single_layer(vec![GroupPlan::new(0..2, vec![init])]);
        p.push_layer(vec![GroupPlan::new(0..2, vec![bump])]);
        p
    }

    let faulty = bounded(|| {
        let team = Team::new(2);
        let store = DataStore::new();
        let opts = RunOptions {
            retry: RetryPolicy::attempts(3),
            faults: FaultPlan::new().panic_at(1, 0, 1).panic_at(1, 0, 2),
            ..RunOptions::default()
        };
        team.run_with(&build_program(), &store, &opts).unwrap();
        store.snapshot()
    });

    let clean = bounded(|| {
        let team = Team::new(2);
        let store = DataStore::new();
        team.run(&build_program(), &store).unwrap();
        store.snapshot()
    });

    assert_eq!(faulty, clean);
    assert_eq!(
        faulty
            .entries()
            .iter()
            .find(|(n, _)| n == "acc")
            .map(|(_, v)| v.clone()),
        Some(vec![1.0]),
        "rollback must erase the two failed attempts' increments"
    );
}

#[test]
fn retries_exhausted_reports_the_final_error() {
    bounded(|| {
        let team = Team::new(2);
        let store = DataStore::new();
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![allreduce_task("s")])]);
        let opts = RunOptions {
            retry: RetryPolicy::attempts(2),
            // Fails on every attempt.
            faults: FaultPlan::new().panic_at(0, 0, 1).panic_at(0, 0, 2),
            ..RunOptions::default()
        };
        let err = team.run_with(&program, &store, &opts).unwrap_err();
        assert!(matches!(err, ExecError::TaskPanicked { layer: 0, .. }));
        // Still usable afterwards.
        team.run(&program, &store).unwrap();
        assert_eq!(store.get("s").unwrap(), vec![3.0]);
    });
}

#[test]
fn worker_loss_shrinks_team_and_continues() {
    bounded(|| {
        let team = Team::new(4);
        let store = DataStore::new();
        let program = Program::single_layer(vec![GroupPlan::new(0..4, vec![allreduce_task("n")])]);
        let opts = RunOptions {
            retry: RetryPolicy::attempts(2),
            faults: FaultPlan::new().lose_at(0, 3, 1),
            ..RunOptions::default()
        };
        team.run_with(&program, &store, &opts).unwrap();
        // The retry re-planned the layer onto the 3 survivors.
        assert_eq!(team.alive_workers(), 3);
        assert_eq!(store.get("n").unwrap(), vec![6.0]); // 1+2+3

        // A program sized for the original team is now rejected, not hung.
        let err = team.run(&program, &store).unwrap_err();
        assert!(matches!(err, ExecError::InvalidProgram(_)), "got {err:?}");

        // One sized for the survivors still runs on the same team.
        let fit = Program::single_layer(vec![GroupPlan::new(0..3, vec![allreduce_task("m")])]);
        team.run(&fit, &store).unwrap();
        assert_eq!(store.get("m").unwrap(), vec![6.0]);
    });
}

#[test]
fn worker_loss_without_retry_is_a_typed_error() {
    bounded(|| {
        let team = Team::new(3);
        let store = DataStore::new();
        let program = Program::single_layer(vec![GroupPlan::new(0..3, vec![allreduce_task("n")])]);
        let opts = RunOptions {
            faults: FaultPlan::new().lose_at(0, 1, 1),
            ..RunOptions::default()
        };
        let err = team.run_with(&program, &store, &opts).unwrap_err();
        assert!(
            matches!(err, ExecError::WorkerLost { layer: 0, .. }),
            "got {err:?}"
        );
        assert_eq!(team.alive_workers(), 2);
    });
}

#[test]
fn injected_delay_slows_but_does_not_fail_the_run() {
    use pt_obs::{keys, Phase, TraceRecorder};

    let delay = Duration::from_millis(50);
    let (events, snapshot) = bounded(move || {
        let recorder = Arc::new(TraceRecorder::for_team(2));
        let team = Team::new(2);
        let store = DataStore::new();
        let program = Program::single_layer(vec![GroupPlan::new(0..2, vec![allreduce_task("s")])]);
        let opts = RunOptions {
            faults: FaultPlan::new().delay(0, 1, delay),
            ..RunOptions::default()
        }
        .with_recorder(recorder.clone());
        let start = Instant::now();
        team.run_with(&program, &store, &opts).unwrap();
        assert!(start.elapsed() >= delay, "straggler delay was not applied");
        assert_eq!(store.get("s").unwrap(), vec![3.0]);
        drop((team, opts));
        let mut recorder = Arc::try_unwrap(recorder).expect("recorder handles released");
        let events = recorder.drain();
        let snapshot = recorder.metrics().snapshot();
        (events, snapshot)
    });

    // The delay surfaces as its own distinct instant (not a generic fault
    // marker) and its duration is accounted in the delay counter.
    let delays: Vec<_> = events
        .iter()
        .filter(|e| e.phase == Phase::Instant && e.name == "fault:delay")
        .collect();
    assert_eq!(delays.len(), 1);
    assert_eq!(snapshot.counter(keys::FAULTS_INJECTED), Some(1));
    assert_eq!(
        snapshot.counter(keys::FAULT_DELAY_US),
        Some(delay.as_micros() as u64),
        "delay duration must be accounted in microseconds"
    );
}

#[test]
fn replanning_after_worker_loss_reuses_the_live_cost_table() {
    use pt_core::LayerScheduler;
    use pt_cost::{CostModel, CostTable};
    use pt_machine::platforms;
    use pt_mtask::{CommOp, DataRef, MTask, Spec};

    // An EPOL-like step: four parallel stages feeding a combine task.
    let graph = Spec::seq(vec![
        Spec::parfor(0..4, |i| {
            Spec::task(MTask::with_comm(
                format!("stage{i}"),
                1e9,
                vec![CommOp::allgather(8e3, 1.0)],
            ))
            .defines([DataRef::block(format!("V{i}"), 8e3)])
        }),
        Spec::task(MTask::compute("combine", 1e7)).uses((0..4).map(|i| format!("V{i}"))),
    ])
    .compile_flat();

    let spec = platforms::chic().with_nodes(2); // 8 cores
    let model = CostModel::new(&spec);
    let scheduler = LayerScheduler::new(&model);

    // Plan for the full team through a live, reusable cost table.
    let table = CostTable::with_width(&model, graph.len(), 8);
    let planned = scheduler.schedule_on_with(&table, &graph, 8);
    assert!(planned.validate().is_ok());
    let priced_at_planning = table.evaluations();
    assert!(priced_at_planning > 0);

    // Execute the planned group structure with one worker permanently
    // lost mid-run; the layer-granular retry shrinks the team and
    // finishes on the survivors.
    let barrier_task: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
        ctx.comm.barrier();
    });
    let mut layers = planned.layers.iter().filter_map(|layer| {
        let mut lo = 0;
        let mut groups = Vec::new();
        for (g, &size) in layer.group_sizes.iter().enumerate() {
            if !layer.assignments[g].is_empty() {
                let tasks = vec![barrier_task.clone(); layer.assignments[g].len()];
                groups.push(GroupPlan::new(lo..lo + size, tasks));
            }
            lo += size;
        }
        (!groups.is_empty()).then_some(groups)
    });
    let mut program = Program::single_layer(layers.next().expect("schedule has a layer"));
    for groups in layers {
        program.push_layer(groups);
    }
    let team = bounded(move || {
        let team = Team::new(8);
        let store = DataStore::new();
        let opts = RunOptions {
            retry: RetryPolicy::attempts(2),
            faults: FaultPlan::new().lose_at(0, 7, 1),
            ..RunOptions::default()
        };
        team.run_with(&program, &store, &opts).unwrap();
        team
    });
    let survivors = team.alive_workers();
    assert_eq!(survivors, 7);

    // Replan onto the survivors, once through the live table of the
    // original planning run and once through a fresh table: identical
    // schedules, but the live table re-prices fewer (task, width) pairs.
    let priced_before_replan = table.evaluations();
    let replanned = scheduler.schedule_on_with(&table, &graph, survivors);
    let priced_by_replan = table.evaluations() - priced_before_replan;

    let fresh_table = CostTable::with_width(&model, graph.len(), survivors);
    let fresh = scheduler.schedule_on_with(&fresh_table, &graph, survivors);

    assert_eq!(
        replanned, fresh,
        "memoized and fresh-table replans must be identical"
    );
    assert!(replanned.validate().is_ok());
    assert!(
        priced_by_replan < fresh_table.evaluations(),
        "live table must reuse pairs priced at planning time \
         ({priced_by_replan} new vs {} fresh)",
        fresh_table.evaluations()
    );
}

#[test]
fn multi_layer_retry_only_replays_the_failed_layer() {
    // Layer 0 counts its executions; a fault in layer 1 plus retry must not
    // re-run layer 0.
    bounded(|| {
        let team = Team::new(2);
        let store = DataStore::new();
        store.put("layer0_runs", vec![0.0]);
        let count: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            if ctx.rank == 0 {
                let mut c = ctx.store.get("layer0_runs").unwrap();
                c[0] += 1.0;
                ctx.store.put("layer0_runs", c);
            }
        });
        let noop: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            ctx.comm.barrier();
        });
        let mut program = Program::single_layer(vec![GroupPlan::new(0..2, vec![count])]);
        program.push_layer(vec![GroupPlan::new(0..2, vec![noop])]);
        let opts = RunOptions {
            retry: RetryPolicy::attempts(2),
            faults: FaultPlan::new().panic_at(1, 0, 1),
            ..RunOptions::default()
        };
        team.run_with(&program, &store, &opts).unwrap();
        assert_eq!(store.get("layer0_runs").unwrap(), vec![1.0]);
    });
}

#[test]
fn fault_injection_trace_matches_retry_accounting() {
    // A recorded faulty run must tell the same story twice: the metrics
    // counters, the instant events in the trace, and the run's observable
    // retry behaviour all have to agree on how many faults fired and how
    // many retries happened.
    use pt_obs::{keys, Phase, TraceRecorder};

    let (events, snapshot) = bounded(|| {
        let recorder = Arc::new(TraceRecorder::for_team(2));
        let team = Team::new(2);
        let store = DataStore::new();
        let init: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            if ctx.rank == 0 {
                ctx.store.put("base", vec![1.0]);
            }
        });
        let sync: Arc<TaskFn> = Arc::new(|ctx: &TaskCtx| {
            ctx.comm.barrier();
        });
        let mut program = Program::single_layer(vec![GroupPlan::new(0..2, vec![init])]);
        program.push_layer(vec![GroupPlan::new(0..2, vec![sync])]);
        // Rank 0 panics on the first two attempts of layer 1; the third
        // succeeds under a 3-attempt policy.
        let opts = RunOptions {
            retry: RetryPolicy::attempts(3),
            faults: FaultPlan::new().panic_at(1, 0, 1).panic_at(1, 0, 2),
            ..RunOptions::default()
        }
        .with_recorder(recorder.clone());
        team.run_with(&program, &store, &opts).unwrap();
        drop((team, opts));
        let mut recorder = Arc::try_unwrap(recorder).expect("recorder handles released");
        let events = recorder.drain();
        let snapshot = recorder.metrics().snapshot();
        (events, snapshot)
    });

    let instants = |name: &str| {
        events
            .iter()
            .filter(|e| e.phase == Phase::Instant && e.name == name)
            .count() as u64
    };

    // Two injected panics, each triggering one rollback + retry.
    assert_eq!(snapshot.counter(keys::FAULTS_INJECTED), Some(2));
    assert_eq!(snapshot.counter(keys::RETRIES), Some(2));
    assert_eq!(snapshot.counter(keys::ROLLBACKS), Some(2));
    assert_eq!(instants("fault:panic"), 2);
    assert_eq!(instants("retry"), 2);
    assert_eq!(
        instants("panic"),
        2,
        "each injected fault surfaces as a task panic"
    );

    // Counters and trace agree with each other, not just with the plan.
    assert_eq!(
        snapshot.counter(keys::FAULTS_INJECTED),
        Some(instants("fault:panic") + instants("fault:delay") + instants("fault:lose"))
    );
    assert_eq!(snapshot.counter(keys::RETRIES), Some(instants("retry")));
    assert_eq!(
        snapshot.counter(keys::COLLECTIVE_ABORTS),
        Some(instants("collective_abort")),
        "abort counter must match abort instants"
    );

    // Task accounting: layer 0 runs once on 2 ranks; layer 1's two failed
    // attempts never complete a task body (rank 0 panics pre-task, rank 1
    // is aborted inside its barrier), the successful third attempt
    // completes on both ranks.
    assert_eq!(snapshot.counter(keys::TASKS_RUN), Some(4));

    // Per-attempt spans: the driver records one span per retry loop
    // iteration that reaches the report phase.
    let attempts = events
        .iter()
        .filter(|e| e.name == "attempt" && e.cat == "exec")
        .count();
    assert_eq!(attempts, 3, "three attempts: two faulty, one clean");
}
