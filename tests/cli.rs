//! Integration tests driving the `ptsched` binary: malformed or
//! out-of-range arguments must exit with status 2 and a usage pointer
//! (never a panic), and `ptsched serve` must answer line-delimited JSON
//! requests on stdin.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_ptsched");

fn run(args: &[&str]) -> std::process::Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("run ptsched binary")
}

#[test]
fn bad_arguments_exit_2_with_a_message_not_a_panic() {
    // Every entry used to reach an assert inside the scheduling pipeline
    // (with_cores, with_fixed_groups, empty step graphs) or already exited
    // 2 via the parser; all must now take the usage path.
    let cases: &[&[&str]] = &[
        &["--cores", "7"],            // not a whole number of nodes
        &["--cores", "0"],            // zero cores
        &["--cores", "1000000"],      // more cores than the machine has
        &["--cores", "abc"],          // malformed number
        &["--groups", "0"],           // zero groups
        &["--steps", "0"],            // empty step graph
        &["--steps"],                 // missing value
        &["--workload", "nope"],      // unknown workload
        &["--platform", "nope"],      // unknown platform
        &["--mapping", "nope"],       // unknown mapping
        &["--bogus-flag"],            // unknown option
        &["serve", "--workers", "0"], // serve: zero workers
    ];
    for args in cases {
        let out = run(args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "ptsched {args:?} should exit 2, got {:?}\nstderr: {stderr}",
            out.status
        );
        assert!(
            stderr.contains("ptsched:") && stderr.contains("--help"),
            "ptsched {args:?} should print a usage pointer, got: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "ptsched {args:?} panicked: {stderr}"
        );
    }
}

#[test]
fn help_exits_0() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
    let out = run(&["serve", "--help"]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn serve_answers_json_lines_on_stdin() {
    let mut child = Command::new(BIN)
        .args(["serve", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ptsched serve");
    let mut stdin = child.stdin.take().expect("stdin pipe");
    let stdout = BufReader::new(child.stdout.take().expect("stdout pipe"));

    let requests = [
        r#"{"workload":"epol","cores":16,"steps":1}"#,
        r#"{"workload":"epol","cores":16,"steps":1}"#,
        r#"{"workload":"epol","cores":7,"steps":1}"#,
        r#"{"cmd":"stats"}"#,
    ];
    for r in requests {
        writeln!(stdin, "{r}").expect("write request");
    }
    drop(stdin); // EOF ends the serve loop

    let lines: Vec<String> = stdout.lines().map(|l| l.expect("response line")).collect();
    assert_eq!(
        lines.len(),
        requests.len(),
        "one response per request: {lines:?}"
    );

    // First request computes, second hits the cache with the same result.
    assert!(lines[0].contains(r#""ok":true"#) && lines[0].contains(r#""cache":"miss""#));
    assert!(lines[1].contains(r#""ok":true"#) && lines[1].contains(r#""cache":"hit""#));
    let field = |line: &str, key: &str| -> String {
        let start = line.find(key).unwrap_or_else(|| panic!("{key} in {line}")) + key.len();
        line[start..]
            .chars()
            .take_while(|c| !",}".contains(*c))
            .collect()
    };
    assert_eq!(
        field(&lines[0], r#""makespan_ms_per_step":"#),
        field(&lines[1], r#""makespan_ms_per_step":"#),
        "cache hit must return the identical makespan"
    );

    // Invalid request fails the line, not the process.
    assert!(lines[2].contains(r#""ok":false"#) && lines[2].contains("whole number"));
    // Stats reflect the hit and the two answered schedule requests.
    assert!(lines[3].contains(r#""hits":1"#) && lines[3].contains(r#""misses":1"#));

    let status = child.wait().expect("serve exits");
    assert!(
        status.success(),
        "serve should exit 0 on EOF, got {status:?}"
    );
}

#[test]
fn serve_submit_and_tenant_run_a_job_stream() {
    let mut child = Command::new(BIN)
        .args(["serve", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ptsched serve");
    let mut stdin = child.stdin.take().expect("stdin pipe");
    let stdout = BufReader::new(child.stdout.take().expect("stdout pipe"));

    let requests = [
        r#"{"cmd":"tenant","cores":16}"#, // nothing submitted yet
        r#"{"cmd":"submit","workload":"epol","steps":1,"arrival":0.0,"min_width":2}"#,
        r#"{"cmd":"submit","workload":"bt-mz","steps":1,"arrival":0.002,"min_width":4}"#,
        r#"{"cmd":"submit","workload":"irk","steps":1,"arrival":0.004,"min_width":2}"#,
        r#"{"cmd":"submit","workload":"nope"}"#, // invalid job rejected
        r#"{"cmd":"tenant","platform":"chic","cores":16,"policy":"fcfs","drain":false}"#,
        r#"{"cmd":"tenant","platform":"chic","cores":16,"policy":"malleable"}"#,
        r#"{"cmd":"tenant","platform":"chic","cores":16}"#, // drained above
    ];
    for r in requests {
        writeln!(stdin, "{r}").expect("write request");
    }
    drop(stdin);

    let lines: Vec<String> = stdout.lines().map(|l| l.expect("response line")).collect();
    assert_eq!(lines.len(), requests.len(), "one response per request");
    assert!(lines[0].contains(r#""ok":false"#) && lines[0].contains("no jobs submitted"));
    for (i, queued) in [(1usize, 1usize), (2, 2), (3, 3)] {
        assert!(
            lines[i].contains(&format!(r#""queued":{queued}"#)),
            "submit #{i}: {}",
            lines[i]
        );
    }
    assert!(lines[4].contains(r#""ok":false"#) && lines[4].contains("unknown workload"));
    assert!(
        lines[5].contains(r#""policy":"fcfs-exclusive""#)
            && lines[5].contains(r#""jobs":3"#)
            && lines[5].contains(r#""resizes":0"#),
        "fcfs scenario: {}",
        lines[5]
    );
    assert!(
        lines[6].contains(r#""policy":"malleable""#) && lines[6].contains(r#""per_job""#),
        "malleable scenario: {}",
        lines[6]
    );
    // The stream was kept by drain:false and consumed by the drain run.
    assert!(lines[7].contains("no jobs submitted"), "{}", lines[7]);

    let status = child.wait().expect("serve exits");
    assert!(status.success());
}

#[test]
fn one_shot_run_still_works() {
    let out = run(&["--workload", "epol", "--cores", "16", "--steps", "1"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("simulated time per step by mapping"));
}
