/root/repo/target/debug/examples/quickstart-86a17a104f295e03.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-86a17a104f295e03: examples/quickstart.rs

examples/quickstart.rs:
