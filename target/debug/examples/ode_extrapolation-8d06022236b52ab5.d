/root/repo/target/debug/examples/ode_extrapolation-8d06022236b52ab5.d: examples/ode_extrapolation.rs Cargo.toml

/root/repo/target/debug/examples/libode_extrapolation-8d06022236b52ab5.rmeta: examples/ode_extrapolation.rs Cargo.toml

examples/ode_extrapolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
