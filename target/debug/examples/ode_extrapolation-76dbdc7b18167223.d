/root/repo/target/debug/examples/ode_extrapolation-76dbdc7b18167223.d: examples/ode_extrapolation.rs

/root/repo/target/debug/examples/ode_extrapolation-76dbdc7b18167223: examples/ode_extrapolation.rs

examples/ode_extrapolation.rs:
