/root/repo/target/debug/examples/fault_recovery-20c5929a6c0c7c9a.d: examples/fault_recovery.rs

/root/repo/target/debug/examples/fault_recovery-20c5929a6c0c7c9a: examples/fault_recovery.rs

examples/fault_recovery.rs:
