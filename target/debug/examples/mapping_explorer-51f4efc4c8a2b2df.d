/root/repo/target/debug/examples/mapping_explorer-51f4efc4c8a2b2df.d: examples/mapping_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libmapping_explorer-51f4efc4c8a2b2df.rmeta: examples/mapping_explorer.rs Cargo.toml

examples/mapping_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
