/root/repo/target/debug/examples/mapping_explorer-efdbab5ed5d90526.d: examples/mapping_explorer.rs

/root/repo/target/debug/examples/mapping_explorer-efdbab5ed5d90526: examples/mapping_explorer.rs

examples/mapping_explorer.rs:
