/root/repo/target/debug/examples/nas_multizone-6392d35a53c8bba3.d: examples/nas_multizone.rs Cargo.toml

/root/repo/target/debug/examples/libnas_multizone-6392d35a53c8bba3.rmeta: examples/nas_multizone.rs Cargo.toml

examples/nas_multizone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
