/root/repo/target/debug/examples/nas_multizone-12829d78cfdd7ade.d: examples/nas_multizone.rs

/root/repo/target/debug/examples/nas_multizone-12829d78cfdd7ade: examples/nas_multizone.rs

examples/nas_multizone.rs:
