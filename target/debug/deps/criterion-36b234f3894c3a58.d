/root/repo/target/debug/deps/criterion-36b234f3894c3a58.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-36b234f3894c3a58.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
