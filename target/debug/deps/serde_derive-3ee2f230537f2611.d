/root/repo/target/debug/deps/serde_derive-3ee2f230537f2611.d: compat/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-3ee2f230537f2611: compat/serde_derive/src/lib.rs

compat/serde_derive/src/lib.rs:
