/root/repo/target/debug/deps/fig14-ee8f98e9a5598b57.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-ee8f98e9a5598b57: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
