/root/repo/target/debug/deps/serde_json-36fa0ac1d141674b.d: compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-36fa0ac1d141674b: compat/serde_json/src/lib.rs

compat/serde_json/src/lib.rs:
