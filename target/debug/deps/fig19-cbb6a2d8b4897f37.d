/root/repo/target/debug/deps/fig19-cbb6a2d8b4897f37.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/fig19-cbb6a2d8b4897f37: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
