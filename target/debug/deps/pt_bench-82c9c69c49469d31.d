/root/repo/target/debug/deps/pt_bench-82c9c69c49469d31.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpt_bench-82c9c69c49469d31.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
