/root/repo/target/debug/deps/parallel_tasks-fff671405ee56f84.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_tasks-fff671405ee56f84.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
