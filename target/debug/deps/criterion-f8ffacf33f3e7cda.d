/root/repo/target/debug/deps/criterion-f8ffacf33f3e7cda.d: compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-f8ffacf33f3e7cda.rmeta: compat/criterion/src/lib.rs Cargo.toml

compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
