/root/repo/target/debug/deps/parallel_tasks-1e4afe89db7dffe1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_tasks-1e4afe89db7dffe1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
