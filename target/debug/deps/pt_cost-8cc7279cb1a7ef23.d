/root/repo/target/debug/deps/pt_cost-8cc7279cb1a7ef23.d: crates/cost/src/lib.rs crates/cost/src/collectives.rs crates/cost/src/context.rs crates/cost/src/redist.rs crates/cost/src/symbolic.rs

/root/repo/target/debug/deps/libpt_cost-8cc7279cb1a7ef23.rlib: crates/cost/src/lib.rs crates/cost/src/collectives.rs crates/cost/src/context.rs crates/cost/src/redist.rs crates/cost/src/symbolic.rs

/root/repo/target/debug/deps/libpt_cost-8cc7279cb1a7ef23.rmeta: crates/cost/src/lib.rs crates/cost/src/collectives.rs crates/cost/src/context.rs crates/cost/src/redist.rs crates/cost/src/symbolic.rs

crates/cost/src/lib.rs:
crates/cost/src/collectives.rs:
crates/cost/src/context.rs:
crates/cost/src/redist.rs:
crates/cost/src/symbolic.rs:
