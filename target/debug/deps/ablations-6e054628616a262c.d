/root/repo/target/debug/deps/ablations-6e054628616a262c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-6e054628616a262c: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
