/root/repo/target/debug/deps/pt_core-20101b1b9e5ec691.d: crates/core/src/lib.rs crates/core/src/adjust.rs crates/core/src/cpa.rs crates/core/src/cpr.rs crates/core/src/hybrid.rs crates/core/src/layer_sched.rs crates/core/src/list.rs crates/core/src/mapping.rs crates/core/src/schedule.rs crates/core/src/two_level.rs Cargo.toml

/root/repo/target/debug/deps/libpt_core-20101b1b9e5ec691.rmeta: crates/core/src/lib.rs crates/core/src/adjust.rs crates/core/src/cpa.rs crates/core/src/cpr.rs crates/core/src/hybrid.rs crates/core/src/layer_sched.rs crates/core/src/list.rs crates/core/src/mapping.rs crates/core/src/schedule.rs crates/core/src/two_level.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adjust.rs:
crates/core/src/cpa.rs:
crates/core/src/cpr.rs:
crates/core/src/hybrid.rs:
crates/core/src/layer_sched.rs:
crates/core/src/list.rs:
crates/core/src/mapping.rs:
crates/core/src/schedule.rs:
crates/core/src/two_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
