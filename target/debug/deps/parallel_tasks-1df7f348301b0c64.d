/root/repo/target/debug/deps/parallel_tasks-1df7f348301b0c64.d: src/lib.rs

/root/repo/target/debug/deps/libparallel_tasks-1df7f348301b0c64.rlib: src/lib.rs

/root/repo/target/debug/deps/libparallel_tasks-1df7f348301b0c64.rmeta: src/lib.rs

src/lib.rs:
