/root/repo/target/debug/deps/runtime-7640cf3bfb3b5b74.d: crates/bench/benches/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-7640cf3bfb3b5b74.rmeta: crates/bench/benches/runtime.rs Cargo.toml

crates/bench/benches/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
