/root/repo/target/debug/deps/pt_cost-8e9064ed88bd7181.d: crates/cost/src/lib.rs crates/cost/src/collectives.rs crates/cost/src/context.rs crates/cost/src/redist.rs crates/cost/src/symbolic.rs

/root/repo/target/debug/deps/pt_cost-8e9064ed88bd7181: crates/cost/src/lib.rs crates/cost/src/collectives.rs crates/cost/src/context.rs crates/cost/src/redist.rs crates/cost/src/symbolic.rs

crates/cost/src/lib.rs:
crates/cost/src/collectives.rs:
crates/cost/src/context.rs:
crates/cost/src/redist.rs:
crates/cost/src/symbolic.rs:
