/root/repo/target/debug/deps/pt_machine-730b285dfddaadb1.d: crates/machine/src/lib.rs crates/machine/src/platforms.rs crates/machine/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libpt_machine-730b285dfddaadb1.rmeta: crates/machine/src/lib.rs crates/machine/src/platforms.rs crates/machine/src/tree.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/platforms.rs:
crates/machine/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
