/root/repo/target/debug/deps/criterion-3d1abd3f35a0b2e1.d: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-3d1abd3f35a0b2e1: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
