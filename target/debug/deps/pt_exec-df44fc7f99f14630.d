/root/repo/target/debug/deps/pt_exec-df44fc7f99f14630.d: crates/exec/src/lib.rs crates/exec/src/barrier.rs crates/exec/src/comm.rs crates/exec/src/dynamic.rs crates/exec/src/error.rs crates/exec/src/fault.rs crates/exec/src/program.rs crates/exec/src/store.rs crates/exec/src/team.rs Cargo.toml

/root/repo/target/debug/deps/libpt_exec-df44fc7f99f14630.rmeta: crates/exec/src/lib.rs crates/exec/src/barrier.rs crates/exec/src/comm.rs crates/exec/src/dynamic.rs crates/exec/src/error.rs crates/exec/src/fault.rs crates/exec/src/program.rs crates/exec/src/store.rs crates/exec/src/team.rs Cargo.toml

crates/exec/src/lib.rs:
crates/exec/src/barrier.rs:
crates/exec/src/comm.rs:
crates/exec/src/dynamic.rs:
crates/exec/src/error.rs:
crates/exec/src/fault.rs:
crates/exec/src/program.rs:
crates/exec/src/store.rs:
crates/exec/src/team.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
