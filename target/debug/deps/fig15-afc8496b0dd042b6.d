/root/repo/target/debug/deps/fig15-afc8496b0dd042b6.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-afc8496b0dd042b6.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
