/root/repo/target/debug/deps/ptsched-2d4f2f6dc23c9a8a.d: src/bin/ptsched.rs Cargo.toml

/root/repo/target/debug/deps/libptsched-2d4f2f6dc23c9a8a.rmeta: src/bin/ptsched.rs Cargo.toml

src/bin/ptsched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
