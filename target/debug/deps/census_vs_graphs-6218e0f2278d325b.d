/root/repo/target/debug/deps/census_vs_graphs-6218e0f2278d325b.d: tests/census_vs_graphs.rs Cargo.toml

/root/repo/target/debug/deps/libcensus_vs_graphs-6218e0f2278d325b.rmeta: tests/census_vs_graphs.rs Cargo.toml

tests/census_vs_graphs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
