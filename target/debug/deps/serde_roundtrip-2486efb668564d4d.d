/root/repo/target/debug/deps/serde_roundtrip-2486efb668564d4d.d: tests/serde_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libserde_roundtrip-2486efb668564d4d.rmeta: tests/serde_roundtrip.rs Cargo.toml

tests/serde_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
