/root/repo/target/debug/deps/pt_bench-178f6487cd882f70.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pt_bench-178f6487cd882f70: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
