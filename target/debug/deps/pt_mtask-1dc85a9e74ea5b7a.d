/root/repo/target/debug/deps/pt_mtask-1dc85a9e74ea5b7a.d: crates/mtask/src/lib.rs crates/mtask/src/chain.rs crates/mtask/src/dist.rs crates/mtask/src/graph.rs crates/mtask/src/layer.rs crates/mtask/src/parse.rs crates/mtask/src/spec.rs crates/mtask/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libpt_mtask-1dc85a9e74ea5b7a.rmeta: crates/mtask/src/lib.rs crates/mtask/src/chain.rs crates/mtask/src/dist.rs crates/mtask/src/graph.rs crates/mtask/src/layer.rs crates/mtask/src/parse.rs crates/mtask/src/spec.rs crates/mtask/src/task.rs Cargo.toml

crates/mtask/src/lib.rs:
crates/mtask/src/chain.rs:
crates/mtask/src/dist.rs:
crates/mtask/src/graph.rs:
crates/mtask/src/layer.rs:
crates/mtask/src/parse.rs:
crates/mtask/src/spec.rs:
crates/mtask/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
