/root/repo/target/debug/deps/collectives-c83c535eada191f1.d: crates/bench/benches/collectives.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives-c83c535eada191f1.rmeta: crates/bench/benches/collectives.rs Cargo.toml

crates/bench/benches/collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
