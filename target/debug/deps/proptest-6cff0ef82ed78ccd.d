/root/repo/target/debug/deps/proptest-6cff0ef82ed78ccd.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-6cff0ef82ed78ccd: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
