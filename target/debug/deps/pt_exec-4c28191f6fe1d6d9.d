/root/repo/target/debug/deps/pt_exec-4c28191f6fe1d6d9.d: crates/exec/src/lib.rs crates/exec/src/barrier.rs crates/exec/src/comm.rs crates/exec/src/dynamic.rs crates/exec/src/error.rs crates/exec/src/fault.rs crates/exec/src/program.rs crates/exec/src/store.rs crates/exec/src/team.rs

/root/repo/target/debug/deps/libpt_exec-4c28191f6fe1d6d9.rlib: crates/exec/src/lib.rs crates/exec/src/barrier.rs crates/exec/src/comm.rs crates/exec/src/dynamic.rs crates/exec/src/error.rs crates/exec/src/fault.rs crates/exec/src/program.rs crates/exec/src/store.rs crates/exec/src/team.rs

/root/repo/target/debug/deps/libpt_exec-4c28191f6fe1d6d9.rmeta: crates/exec/src/lib.rs crates/exec/src/barrier.rs crates/exec/src/comm.rs crates/exec/src/dynamic.rs crates/exec/src/error.rs crates/exec/src/fault.rs crates/exec/src/program.rs crates/exec/src/store.rs crates/exec/src/team.rs

crates/exec/src/lib.rs:
crates/exec/src/barrier.rs:
crates/exec/src/comm.rs:
crates/exec/src/dynamic.rs:
crates/exec/src/error.rs:
crates/exec/src/fault.rs:
crates/exec/src/program.rs:
crates/exec/src/store.rs:
crates/exec/src/team.rs:
