/root/repo/target/debug/deps/pt_sim-3955351ac571039e.d: crates/sim/src/lib.rs crates/sim/src/flat.rs crates/sim/src/layered.rs crates/sim/src/render.rs crates/sim/src/report.rs crates/sim/src/two_level.rs

/root/repo/target/debug/deps/libpt_sim-3955351ac571039e.rlib: crates/sim/src/lib.rs crates/sim/src/flat.rs crates/sim/src/layered.rs crates/sim/src/render.rs crates/sim/src/report.rs crates/sim/src/two_level.rs

/root/repo/target/debug/deps/libpt_sim-3955351ac571039e.rmeta: crates/sim/src/lib.rs crates/sim/src/flat.rs crates/sim/src/layered.rs crates/sim/src/render.rs crates/sim/src/report.rs crates/sim/src/two_level.rs

crates/sim/src/lib.rs:
crates/sim/src/flat.rs:
crates/sim/src/layered.rs:
crates/sim/src/render.rs:
crates/sim/src/report.rs:
crates/sim/src/two_level.rs:
