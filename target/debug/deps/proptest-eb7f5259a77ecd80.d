/root/repo/target/debug/deps/proptest-eb7f5259a77ecd80.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-eb7f5259a77ecd80.rlib: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-eb7f5259a77ecd80.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
