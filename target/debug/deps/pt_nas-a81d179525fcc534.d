/root/repo/target/debug/deps/pt_nas-a81d179525fcc534.d: crates/nas/src/lib.rs crates/nas/src/classes.rs crates/nas/src/graph.rs crates/nas/src/kernel.rs

/root/repo/target/debug/deps/libpt_nas-a81d179525fcc534.rlib: crates/nas/src/lib.rs crates/nas/src/classes.rs crates/nas/src/graph.rs crates/nas/src/kernel.rs

/root/repo/target/debug/deps/libpt_nas-a81d179525fcc534.rmeta: crates/nas/src/lib.rs crates/nas/src/classes.rs crates/nas/src/graph.rs crates/nas/src/kernel.rs

crates/nas/src/lib.rs:
crates/nas/src/classes.rs:
crates/nas/src/graph.rs:
crates/nas/src/kernel.rs:
