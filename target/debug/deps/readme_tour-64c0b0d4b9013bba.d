/root/repo/target/debug/deps/readme_tour-64c0b0d4b9013bba.d: tests/readme_tour.rs

/root/repo/target/debug/deps/readme_tour-64c0b0d4b9013bba: tests/readme_tour.rs

tests/readme_tour.rs:
