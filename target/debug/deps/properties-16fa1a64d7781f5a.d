/root/repo/target/debug/deps/properties-16fa1a64d7781f5a.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-16fa1a64d7781f5a.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
