/root/repo/target/debug/deps/rand_chacha-d2af89fb8ae2d407.d: compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-d2af89fb8ae2d407: compat/rand_chacha/src/lib.rs

compat/rand_chacha/src/lib.rs:
