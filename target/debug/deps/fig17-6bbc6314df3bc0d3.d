/root/repo/target/debug/deps/fig17-6bbc6314df3bc0d3.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-6bbc6314df3bc0d3: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
