/root/repo/target/debug/deps/exec_properties-88fddf1e3d131b33.d: tests/exec_properties.rs

/root/repo/target/debug/deps/exec_properties-88fddf1e3d131b33: tests/exec_properties.rs

tests/exec_properties.rs:
