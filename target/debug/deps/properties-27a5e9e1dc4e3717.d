/root/repo/target/debug/deps/properties-27a5e9e1dc4e3717.d: tests/properties.rs

/root/repo/target/debug/deps/properties-27a5e9e1dc4e3717: tests/properties.rs

tests/properties.rs:
