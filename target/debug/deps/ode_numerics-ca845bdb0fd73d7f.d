/root/repo/target/debug/deps/ode_numerics-ca845bdb0fd73d7f.d: crates/bench/benches/ode_numerics.rs Cargo.toml

/root/repo/target/debug/deps/libode_numerics-ca845bdb0fd73d7f.rmeta: crates/bench/benches/ode_numerics.rs Cargo.toml

crates/bench/benches/ode_numerics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
