/root/repo/target/debug/deps/ablations-aa1183b803f769bf.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-aa1183b803f769bf.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
