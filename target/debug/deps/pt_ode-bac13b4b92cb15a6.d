/root/repo/target/debug/deps/pt_ode-bac13b4b92cb15a6.d: crates/ode/src/lib.rs crates/ode/src/bruss2d.rs crates/ode/src/census.rs crates/ode/src/diirk.rs crates/ode/src/epol.rs crates/ode/src/irk.rs crates/ode/src/linalg.rs crates/ode/src/pab.rs crates/ode/src/pabm.rs crates/ode/src/reference.rs crates/ode/src/schroed.rs crates/ode/src/system.rs crates/ode/src/tableau.rs crates/ode/src/spmd_util.rs

/root/repo/target/debug/deps/pt_ode-bac13b4b92cb15a6: crates/ode/src/lib.rs crates/ode/src/bruss2d.rs crates/ode/src/census.rs crates/ode/src/diirk.rs crates/ode/src/epol.rs crates/ode/src/irk.rs crates/ode/src/linalg.rs crates/ode/src/pab.rs crates/ode/src/pabm.rs crates/ode/src/reference.rs crates/ode/src/schroed.rs crates/ode/src/system.rs crates/ode/src/tableau.rs crates/ode/src/spmd_util.rs

crates/ode/src/lib.rs:
crates/ode/src/bruss2d.rs:
crates/ode/src/census.rs:
crates/ode/src/diirk.rs:
crates/ode/src/epol.rs:
crates/ode/src/irk.rs:
crates/ode/src/linalg.rs:
crates/ode/src/pab.rs:
crates/ode/src/pabm.rs:
crates/ode/src/reference.rs:
crates/ode/src/schroed.rs:
crates/ode/src/system.rs:
crates/ode/src/tableau.rs:
crates/ode/src/spmd_util.rs:
