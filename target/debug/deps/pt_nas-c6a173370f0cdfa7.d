/root/repo/target/debug/deps/pt_nas-c6a173370f0cdfa7.d: crates/nas/src/lib.rs crates/nas/src/classes.rs crates/nas/src/graph.rs crates/nas/src/kernel.rs Cargo.toml

/root/repo/target/debug/deps/libpt_nas-c6a173370f0cdfa7.rmeta: crates/nas/src/lib.rs crates/nas/src/classes.rs crates/nas/src/graph.rs crates/nas/src/kernel.rs Cargo.toml

crates/nas/src/lib.rs:
crates/nas/src/classes.rs:
crates/nas/src/graph.rs:
crates/nas/src/kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
