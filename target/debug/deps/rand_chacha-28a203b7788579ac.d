/root/repo/target/debug/deps/rand_chacha-28a203b7788579ac.d: compat/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-28a203b7788579ac.rmeta: compat/rand_chacha/src/lib.rs Cargo.toml

compat/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
