/root/repo/target/debug/deps/fig16-5ce6c683de692c43.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-5ce6c683de692c43: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
