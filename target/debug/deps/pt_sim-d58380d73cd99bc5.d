/root/repo/target/debug/deps/pt_sim-d58380d73cd99bc5.d: crates/sim/src/lib.rs crates/sim/src/flat.rs crates/sim/src/layered.rs crates/sim/src/render.rs crates/sim/src/report.rs crates/sim/src/two_level.rs Cargo.toml

/root/repo/target/debug/deps/libpt_sim-d58380d73cd99bc5.rmeta: crates/sim/src/lib.rs crates/sim/src/flat.rs crates/sim/src/layered.rs crates/sim/src/render.rs crates/sim/src/report.rs crates/sim/src/two_level.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/flat.rs:
crates/sim/src/layered.rs:
crates/sim/src/render.rs:
crates/sim/src/report.rs:
crates/sim/src/two_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
