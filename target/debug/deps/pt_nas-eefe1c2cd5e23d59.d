/root/repo/target/debug/deps/pt_nas-eefe1c2cd5e23d59.d: crates/nas/src/lib.rs crates/nas/src/classes.rs crates/nas/src/graph.rs crates/nas/src/kernel.rs

/root/repo/target/debug/deps/pt_nas-eefe1c2cd5e23d59: crates/nas/src/lib.rs crates/nas/src/classes.rs crates/nas/src/graph.rs crates/nas/src/kernel.rs

crates/nas/src/lib.rs:
crates/nas/src/classes.rs:
crates/nas/src/graph.rs:
crates/nas/src/kernel.rs:
