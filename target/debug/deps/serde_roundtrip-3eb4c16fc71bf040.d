/root/repo/target/debug/deps/serde_roundtrip-3eb4c16fc71bf040.d: tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-3eb4c16fc71bf040: tests/serde_roundtrip.rs

tests/serde_roundtrip.rs:
