/root/repo/target/debug/deps/ptsched-1d5c5b3e9e89f4d7.d: src/bin/ptsched.rs

/root/repo/target/debug/deps/ptsched-1d5c5b3e9e89f4d7: src/bin/ptsched.rs

src/bin/ptsched.rs:
