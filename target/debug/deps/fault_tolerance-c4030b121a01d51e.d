/root/repo/target/debug/deps/fault_tolerance-c4030b121a01d51e.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-c4030b121a01d51e: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
