/root/repo/target/debug/deps/census_vs_graphs-b30cb52cfb91d147.d: tests/census_vs_graphs.rs

/root/repo/target/debug/deps/census_vs_graphs-b30cb52cfb91d147: tests/census_vs_graphs.rs

tests/census_vs_graphs.rs:
