/root/repo/target/debug/deps/parallel_tasks-bcad3620bf444e4c.d: src/lib.rs

/root/repo/target/debug/deps/parallel_tasks-bcad3620bf444e4c: src/lib.rs

src/lib.rs:
