/root/repo/target/debug/deps/pt_exec-b7be0a6992bc7e09.d: crates/exec/src/lib.rs crates/exec/src/barrier.rs crates/exec/src/comm.rs crates/exec/src/dynamic.rs crates/exec/src/error.rs crates/exec/src/fault.rs crates/exec/src/program.rs crates/exec/src/store.rs crates/exec/src/team.rs

/root/repo/target/debug/deps/pt_exec-b7be0a6992bc7e09: crates/exec/src/lib.rs crates/exec/src/barrier.rs crates/exec/src/comm.rs crates/exec/src/dynamic.rs crates/exec/src/error.rs crates/exec/src/fault.rs crates/exec/src/program.rs crates/exec/src/store.rs crates/exec/src/team.rs

crates/exec/src/lib.rs:
crates/exec/src/barrier.rs:
crates/exec/src/comm.rs:
crates/exec/src/dynamic.rs:
crates/exec/src/error.rs:
crates/exec/src/fault.rs:
crates/exec/src/program.rs:
crates/exec/src/store.rs:
crates/exec/src/team.rs:
