/root/repo/target/debug/deps/readme_tour-f81e829d289bac50.d: tests/readme_tour.rs Cargo.toml

/root/repo/target/debug/deps/libreadme_tour-f81e829d289bac50.rmeta: tests/readme_tour.rs Cargo.toml

tests/readme_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
