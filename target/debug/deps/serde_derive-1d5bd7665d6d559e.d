/root/repo/target/debug/deps/serde_derive-1d5bd7665d6d559e.d: compat/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-1d5bd7665d6d559e.so: compat/serde_derive/src/lib.rs

compat/serde_derive/src/lib.rs:
