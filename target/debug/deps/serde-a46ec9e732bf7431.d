/root/repo/target/debug/deps/serde-a46ec9e732bf7431.d: compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a46ec9e732bf7431.rlib: compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a46ec9e732bf7431.rmeta: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
