/root/repo/target/debug/deps/table1-99bfb7f50d961b6a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-99bfb7f50d961b6a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
