/root/repo/target/debug/deps/serde_json-4913c09753f5731f.d: compat/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-4913c09753f5731f.rmeta: compat/serde_json/src/lib.rs Cargo.toml

compat/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
