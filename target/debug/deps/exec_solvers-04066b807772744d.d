/root/repo/target/debug/deps/exec_solvers-04066b807772744d.d: tests/exec_solvers.rs

/root/repo/target/debug/deps/exec_solvers-04066b807772744d: tests/exec_solvers.rs

tests/exec_solvers.rs:
