/root/repo/target/debug/deps/ptsched-3e5a2d5107f91748.d: src/bin/ptsched.rs

/root/repo/target/debug/deps/ptsched-3e5a2d5107f91748: src/bin/ptsched.rs

src/bin/ptsched.rs:
