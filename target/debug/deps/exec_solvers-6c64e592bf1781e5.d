/root/repo/target/debug/deps/exec_solvers-6c64e592bf1781e5.d: tests/exec_solvers.rs Cargo.toml

/root/repo/target/debug/deps/libexec_solvers-6c64e592bf1781e5.rmeta: tests/exec_solvers.rs Cargo.toml

tests/exec_solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
