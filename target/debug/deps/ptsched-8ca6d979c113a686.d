/root/repo/target/debug/deps/ptsched-8ca6d979c113a686.d: src/bin/ptsched.rs Cargo.toml

/root/repo/target/debug/deps/libptsched-8ca6d979c113a686.rmeta: src/bin/ptsched.rs Cargo.toml

src/bin/ptsched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
