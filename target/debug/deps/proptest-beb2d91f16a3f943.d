/root/repo/target/debug/deps/proptest-beb2d91f16a3f943.d: compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-beb2d91f16a3f943.rmeta: compat/proptest/src/lib.rs Cargo.toml

compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
