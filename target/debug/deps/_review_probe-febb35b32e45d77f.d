/root/repo/target/debug/deps/_review_probe-febb35b32e45d77f.d: tests/_review_probe.rs

/root/repo/target/debug/deps/_review_probe-febb35b32e45d77f: tests/_review_probe.rs

tests/_review_probe.rs:
