/root/repo/target/debug/deps/fig18-bf97b39664682a7c.d: crates/bench/src/bin/fig18.rs Cargo.toml

/root/repo/target/debug/deps/libfig18-bf97b39664682a7c.rmeta: crates/bench/src/bin/fig18.rs Cargo.toml

crates/bench/src/bin/fig18.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
