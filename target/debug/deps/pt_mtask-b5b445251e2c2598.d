/root/repo/target/debug/deps/pt_mtask-b5b445251e2c2598.d: crates/mtask/src/lib.rs crates/mtask/src/chain.rs crates/mtask/src/dist.rs crates/mtask/src/graph.rs crates/mtask/src/layer.rs crates/mtask/src/parse.rs crates/mtask/src/spec.rs crates/mtask/src/task.rs

/root/repo/target/debug/deps/libpt_mtask-b5b445251e2c2598.rlib: crates/mtask/src/lib.rs crates/mtask/src/chain.rs crates/mtask/src/dist.rs crates/mtask/src/graph.rs crates/mtask/src/layer.rs crates/mtask/src/parse.rs crates/mtask/src/spec.rs crates/mtask/src/task.rs

/root/repo/target/debug/deps/libpt_mtask-b5b445251e2c2598.rmeta: crates/mtask/src/lib.rs crates/mtask/src/chain.rs crates/mtask/src/dist.rs crates/mtask/src/graph.rs crates/mtask/src/layer.rs crates/mtask/src/parse.rs crates/mtask/src/spec.rs crates/mtask/src/task.rs

crates/mtask/src/lib.rs:
crates/mtask/src/chain.rs:
crates/mtask/src/dist.rs:
crates/mtask/src/graph.rs:
crates/mtask/src/layer.rs:
crates/mtask/src/parse.rs:
crates/mtask/src/spec.rs:
crates/mtask/src/task.rs:
