/root/repo/target/debug/deps/pt_machine-b1178dcc80180a0d.d: crates/machine/src/lib.rs crates/machine/src/platforms.rs crates/machine/src/tree.rs

/root/repo/target/debug/deps/pt_machine-b1178dcc80180a0d: crates/machine/src/lib.rs crates/machine/src/platforms.rs crates/machine/src/tree.rs

crates/machine/src/lib.rs:
crates/machine/src/platforms.rs:
crates/machine/src/tree.rs:
