/root/repo/target/debug/deps/pt_mtask-4d084c7c62de80d7.d: crates/mtask/src/lib.rs crates/mtask/src/chain.rs crates/mtask/src/dist.rs crates/mtask/src/graph.rs crates/mtask/src/layer.rs crates/mtask/src/parse.rs crates/mtask/src/spec.rs crates/mtask/src/task.rs

/root/repo/target/debug/deps/pt_mtask-4d084c7c62de80d7: crates/mtask/src/lib.rs crates/mtask/src/chain.rs crates/mtask/src/dist.rs crates/mtask/src/graph.rs crates/mtask/src/layer.rs crates/mtask/src/parse.rs crates/mtask/src/spec.rs crates/mtask/src/task.rs

crates/mtask/src/lib.rs:
crates/mtask/src/chain.rs:
crates/mtask/src/dist.rs:
crates/mtask/src/graph.rs:
crates/mtask/src/layer.rs:
crates/mtask/src/parse.rs:
crates/mtask/src/spec.rs:
crates/mtask/src/task.rs:
