/root/repo/target/debug/deps/pt_sim-f125a0cf3dbbe5c5.d: crates/sim/src/lib.rs crates/sim/src/flat.rs crates/sim/src/layered.rs crates/sim/src/render.rs crates/sim/src/report.rs crates/sim/src/two_level.rs

/root/repo/target/debug/deps/pt_sim-f125a0cf3dbbe5c5: crates/sim/src/lib.rs crates/sim/src/flat.rs crates/sim/src/layered.rs crates/sim/src/render.rs crates/sim/src/report.rs crates/sim/src/two_level.rs

crates/sim/src/lib.rs:
crates/sim/src/flat.rs:
crates/sim/src/layered.rs:
crates/sim/src/render.rs:
crates/sim/src/report.rs:
crates/sim/src/two_level.rs:
