/root/repo/target/debug/deps/fig18-dc6f2216696a5f07.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-dc6f2216696a5f07: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
