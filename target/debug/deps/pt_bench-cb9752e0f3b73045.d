/root/repo/target/debug/deps/pt_bench-cb9752e0f3b73045.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpt_bench-cb9752e0f3b73045.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpt_bench-cb9752e0f3b73045.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
