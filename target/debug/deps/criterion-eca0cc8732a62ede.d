/root/repo/target/debug/deps/criterion-eca0cc8732a62ede.d: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-eca0cc8732a62ede.rlib: compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-eca0cc8732a62ede.rmeta: compat/criterion/src/lib.rs

compat/criterion/src/lib.rs:
