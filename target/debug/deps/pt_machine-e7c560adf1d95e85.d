/root/repo/target/debug/deps/pt_machine-e7c560adf1d95e85.d: crates/machine/src/lib.rs crates/machine/src/platforms.rs crates/machine/src/tree.rs

/root/repo/target/debug/deps/libpt_machine-e7c560adf1d95e85.rlib: crates/machine/src/lib.rs crates/machine/src/platforms.rs crates/machine/src/tree.rs

/root/repo/target/debug/deps/libpt_machine-e7c560adf1d95e85.rmeta: crates/machine/src/lib.rs crates/machine/src/platforms.rs crates/machine/src/tree.rs

crates/machine/src/lib.rs:
crates/machine/src/platforms.rs:
crates/machine/src/tree.rs:
