/root/repo/target/debug/deps/pipeline-855bed3d3c4c0047.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-855bed3d3c4c0047: tests/pipeline.rs

tests/pipeline.rs:
