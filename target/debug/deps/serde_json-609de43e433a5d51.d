/root/repo/target/debug/deps/serde_json-609de43e433a5d51.d: compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-609de43e433a5d51.rlib: compat/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-609de43e433a5d51.rmeta: compat/serde_json/src/lib.rs

compat/serde_json/src/lib.rs:
