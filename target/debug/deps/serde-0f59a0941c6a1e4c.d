/root/repo/target/debug/deps/serde-0f59a0941c6a1e4c.d: compat/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-0f59a0941c6a1e4c.rmeta: compat/serde/src/lib.rs Cargo.toml

compat/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
