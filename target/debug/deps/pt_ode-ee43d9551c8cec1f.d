/root/repo/target/debug/deps/pt_ode-ee43d9551c8cec1f.d: crates/ode/src/lib.rs crates/ode/src/bruss2d.rs crates/ode/src/census.rs crates/ode/src/diirk.rs crates/ode/src/epol.rs crates/ode/src/irk.rs crates/ode/src/linalg.rs crates/ode/src/pab.rs crates/ode/src/pabm.rs crates/ode/src/reference.rs crates/ode/src/schroed.rs crates/ode/src/system.rs crates/ode/src/tableau.rs crates/ode/src/spmd_util.rs Cargo.toml

/root/repo/target/debug/deps/libpt_ode-ee43d9551c8cec1f.rmeta: crates/ode/src/lib.rs crates/ode/src/bruss2d.rs crates/ode/src/census.rs crates/ode/src/diirk.rs crates/ode/src/epol.rs crates/ode/src/irk.rs crates/ode/src/linalg.rs crates/ode/src/pab.rs crates/ode/src/pabm.rs crates/ode/src/reference.rs crates/ode/src/schroed.rs crates/ode/src/system.rs crates/ode/src/tableau.rs crates/ode/src/spmd_util.rs Cargo.toml

crates/ode/src/lib.rs:
crates/ode/src/bruss2d.rs:
crates/ode/src/census.rs:
crates/ode/src/diirk.rs:
crates/ode/src/epol.rs:
crates/ode/src/irk.rs:
crates/ode/src/linalg.rs:
crates/ode/src/pab.rs:
crates/ode/src/pabm.rs:
crates/ode/src/reference.rs:
crates/ode/src/schroed.rs:
crates/ode/src/system.rs:
crates/ode/src/tableau.rs:
crates/ode/src/spmd_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
