/root/repo/target/debug/deps/fig15-cd66856d41b5b898.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-cd66856d41b5b898: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
