/root/repo/target/debug/deps/fig13-831f42aefe627f10.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-831f42aefe627f10: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
