/root/repo/target/debug/deps/pt_cost-4d0ff24e2bc7bc83.d: crates/cost/src/lib.rs crates/cost/src/collectives.rs crates/cost/src/context.rs crates/cost/src/redist.rs crates/cost/src/symbolic.rs Cargo.toml

/root/repo/target/debug/deps/libpt_cost-4d0ff24e2bc7bc83.rmeta: crates/cost/src/lib.rs crates/cost/src/collectives.rs crates/cost/src/context.rs crates/cost/src/redist.rs crates/cost/src/symbolic.rs Cargo.toml

crates/cost/src/lib.rs:
crates/cost/src/collectives.rs:
crates/cost/src/context.rs:
crates/cost/src/redist.rs:
crates/cost/src/symbolic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
