/root/repo/target/debug/deps/serde-da39829bb1d8861a.d: compat/serde/src/lib.rs

/root/repo/target/debug/deps/serde-da39829bb1d8861a: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
