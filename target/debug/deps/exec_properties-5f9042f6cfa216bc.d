/root/repo/target/debug/deps/exec_properties-5f9042f6cfa216bc.d: tests/exec_properties.rs Cargo.toml

/root/repo/target/debug/deps/libexec_properties-5f9042f6cfa216bc.rmeta: tests/exec_properties.rs Cargo.toml

tests/exec_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
