/root/repo/target/release/examples/quickstart-88ebe18926ea90de.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-88ebe18926ea90de: examples/quickstart.rs

examples/quickstart.rs:
