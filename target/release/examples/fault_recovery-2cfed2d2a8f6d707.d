/root/repo/target/release/examples/fault_recovery-2cfed2d2a8f6d707.d: examples/fault_recovery.rs

/root/repo/target/release/examples/fault_recovery-2cfed2d2a8f6d707: examples/fault_recovery.rs

examples/fault_recovery.rs:
