/root/repo/target/release/examples/_probe_real_panic-cab6952a659b3a4a.d: examples/_probe_real_panic.rs

/root/repo/target/release/examples/_probe_real_panic-cab6952a659b3a4a: examples/_probe_real_panic.rs

examples/_probe_real_panic.rs:
