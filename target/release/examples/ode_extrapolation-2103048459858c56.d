/root/repo/target/release/examples/ode_extrapolation-2103048459858c56.d: examples/ode_extrapolation.rs

/root/repo/target/release/examples/ode_extrapolation-2103048459858c56: examples/ode_extrapolation.rs

examples/ode_extrapolation.rs:
