/root/repo/target/release/deps/pt_cost-2022f86b5c4f4f60.d: crates/cost/src/lib.rs crates/cost/src/collectives.rs crates/cost/src/context.rs crates/cost/src/redist.rs crates/cost/src/symbolic.rs

/root/repo/target/release/deps/libpt_cost-2022f86b5c4f4f60.rlib: crates/cost/src/lib.rs crates/cost/src/collectives.rs crates/cost/src/context.rs crates/cost/src/redist.rs crates/cost/src/symbolic.rs

/root/repo/target/release/deps/libpt_cost-2022f86b5c4f4f60.rmeta: crates/cost/src/lib.rs crates/cost/src/collectives.rs crates/cost/src/context.rs crates/cost/src/redist.rs crates/cost/src/symbolic.rs

crates/cost/src/lib.rs:
crates/cost/src/collectives.rs:
crates/cost/src/context.rs:
crates/cost/src/redist.rs:
crates/cost/src/symbolic.rs:
