/root/repo/target/release/deps/pt_mtask-90b443a2acbfe08c.d: crates/mtask/src/lib.rs crates/mtask/src/chain.rs crates/mtask/src/dist.rs crates/mtask/src/graph.rs crates/mtask/src/layer.rs crates/mtask/src/parse.rs crates/mtask/src/spec.rs crates/mtask/src/task.rs

/root/repo/target/release/deps/libpt_mtask-90b443a2acbfe08c.rlib: crates/mtask/src/lib.rs crates/mtask/src/chain.rs crates/mtask/src/dist.rs crates/mtask/src/graph.rs crates/mtask/src/layer.rs crates/mtask/src/parse.rs crates/mtask/src/spec.rs crates/mtask/src/task.rs

/root/repo/target/release/deps/libpt_mtask-90b443a2acbfe08c.rmeta: crates/mtask/src/lib.rs crates/mtask/src/chain.rs crates/mtask/src/dist.rs crates/mtask/src/graph.rs crates/mtask/src/layer.rs crates/mtask/src/parse.rs crates/mtask/src/spec.rs crates/mtask/src/task.rs

crates/mtask/src/lib.rs:
crates/mtask/src/chain.rs:
crates/mtask/src/dist.rs:
crates/mtask/src/graph.rs:
crates/mtask/src/layer.rs:
crates/mtask/src/parse.rs:
crates/mtask/src/spec.rs:
crates/mtask/src/task.rs:
