/root/repo/target/release/deps/proptest-074c823050ef1d13.d: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-074c823050ef1d13.rlib: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-074c823050ef1d13.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
