/root/repo/target/release/deps/parallel_tasks-3450dbbebbffd72d.d: src/lib.rs

/root/repo/target/release/deps/libparallel_tasks-3450dbbebbffd72d.rlib: src/lib.rs

/root/repo/target/release/deps/libparallel_tasks-3450dbbebbffd72d.rmeta: src/lib.rs

src/lib.rs:
