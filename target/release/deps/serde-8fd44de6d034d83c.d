/root/repo/target/release/deps/serde-8fd44de6d034d83c.d: compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-8fd44de6d034d83c.rlib: compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-8fd44de6d034d83c.rmeta: compat/serde/src/lib.rs

compat/serde/src/lib.rs:
