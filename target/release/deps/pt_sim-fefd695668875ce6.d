/root/repo/target/release/deps/pt_sim-fefd695668875ce6.d: crates/sim/src/lib.rs crates/sim/src/flat.rs crates/sim/src/layered.rs crates/sim/src/render.rs crates/sim/src/report.rs crates/sim/src/two_level.rs

/root/repo/target/release/deps/libpt_sim-fefd695668875ce6.rlib: crates/sim/src/lib.rs crates/sim/src/flat.rs crates/sim/src/layered.rs crates/sim/src/render.rs crates/sim/src/report.rs crates/sim/src/two_level.rs

/root/repo/target/release/deps/libpt_sim-fefd695668875ce6.rmeta: crates/sim/src/lib.rs crates/sim/src/flat.rs crates/sim/src/layered.rs crates/sim/src/render.rs crates/sim/src/report.rs crates/sim/src/two_level.rs

crates/sim/src/lib.rs:
crates/sim/src/flat.rs:
crates/sim/src/layered.rs:
crates/sim/src/render.rs:
crates/sim/src/report.rs:
crates/sim/src/two_level.rs:
