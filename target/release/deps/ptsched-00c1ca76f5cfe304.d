/root/repo/target/release/deps/ptsched-00c1ca76f5cfe304.d: src/bin/ptsched.rs

/root/repo/target/release/deps/ptsched-00c1ca76f5cfe304: src/bin/ptsched.rs

src/bin/ptsched.rs:
