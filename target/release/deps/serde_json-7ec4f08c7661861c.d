/root/repo/target/release/deps/serde_json-7ec4f08c7661861c.d: compat/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-7ec4f08c7661861c.rlib: compat/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-7ec4f08c7661861c.rmeta: compat/serde_json/src/lib.rs

compat/serde_json/src/lib.rs:
