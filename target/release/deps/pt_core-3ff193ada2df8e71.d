/root/repo/target/release/deps/pt_core-3ff193ada2df8e71.d: crates/core/src/lib.rs crates/core/src/adjust.rs crates/core/src/cpa.rs crates/core/src/cpr.rs crates/core/src/hybrid.rs crates/core/src/layer_sched.rs crates/core/src/list.rs crates/core/src/mapping.rs crates/core/src/schedule.rs crates/core/src/two_level.rs

/root/repo/target/release/deps/libpt_core-3ff193ada2df8e71.rlib: crates/core/src/lib.rs crates/core/src/adjust.rs crates/core/src/cpa.rs crates/core/src/cpr.rs crates/core/src/hybrid.rs crates/core/src/layer_sched.rs crates/core/src/list.rs crates/core/src/mapping.rs crates/core/src/schedule.rs crates/core/src/two_level.rs

/root/repo/target/release/deps/libpt_core-3ff193ada2df8e71.rmeta: crates/core/src/lib.rs crates/core/src/adjust.rs crates/core/src/cpa.rs crates/core/src/cpr.rs crates/core/src/hybrid.rs crates/core/src/layer_sched.rs crates/core/src/list.rs crates/core/src/mapping.rs crates/core/src/schedule.rs crates/core/src/two_level.rs

crates/core/src/lib.rs:
crates/core/src/adjust.rs:
crates/core/src/cpa.rs:
crates/core/src/cpr.rs:
crates/core/src/hybrid.rs:
crates/core/src/layer_sched.rs:
crates/core/src/list.rs:
crates/core/src/mapping.rs:
crates/core/src/schedule.rs:
crates/core/src/two_level.rs:
