/root/repo/target/release/deps/pt_ode-888838f5a988fc56.d: crates/ode/src/lib.rs crates/ode/src/bruss2d.rs crates/ode/src/census.rs crates/ode/src/diirk.rs crates/ode/src/epol.rs crates/ode/src/irk.rs crates/ode/src/linalg.rs crates/ode/src/pab.rs crates/ode/src/pabm.rs crates/ode/src/reference.rs crates/ode/src/schroed.rs crates/ode/src/system.rs crates/ode/src/tableau.rs crates/ode/src/spmd_util.rs

/root/repo/target/release/deps/libpt_ode-888838f5a988fc56.rlib: crates/ode/src/lib.rs crates/ode/src/bruss2d.rs crates/ode/src/census.rs crates/ode/src/diirk.rs crates/ode/src/epol.rs crates/ode/src/irk.rs crates/ode/src/linalg.rs crates/ode/src/pab.rs crates/ode/src/pabm.rs crates/ode/src/reference.rs crates/ode/src/schroed.rs crates/ode/src/system.rs crates/ode/src/tableau.rs crates/ode/src/spmd_util.rs

/root/repo/target/release/deps/libpt_ode-888838f5a988fc56.rmeta: crates/ode/src/lib.rs crates/ode/src/bruss2d.rs crates/ode/src/census.rs crates/ode/src/diirk.rs crates/ode/src/epol.rs crates/ode/src/irk.rs crates/ode/src/linalg.rs crates/ode/src/pab.rs crates/ode/src/pabm.rs crates/ode/src/reference.rs crates/ode/src/schroed.rs crates/ode/src/system.rs crates/ode/src/tableau.rs crates/ode/src/spmd_util.rs

crates/ode/src/lib.rs:
crates/ode/src/bruss2d.rs:
crates/ode/src/census.rs:
crates/ode/src/diirk.rs:
crates/ode/src/epol.rs:
crates/ode/src/irk.rs:
crates/ode/src/linalg.rs:
crates/ode/src/pab.rs:
crates/ode/src/pabm.rs:
crates/ode/src/reference.rs:
crates/ode/src/schroed.rs:
crates/ode/src/system.rs:
crates/ode/src/tableau.rs:
crates/ode/src/spmd_util.rs:
