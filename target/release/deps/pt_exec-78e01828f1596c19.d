/root/repo/target/release/deps/pt_exec-78e01828f1596c19.d: crates/exec/src/lib.rs crates/exec/src/barrier.rs crates/exec/src/comm.rs crates/exec/src/dynamic.rs crates/exec/src/error.rs crates/exec/src/fault.rs crates/exec/src/program.rs crates/exec/src/store.rs crates/exec/src/team.rs

/root/repo/target/release/deps/libpt_exec-78e01828f1596c19.rlib: crates/exec/src/lib.rs crates/exec/src/barrier.rs crates/exec/src/comm.rs crates/exec/src/dynamic.rs crates/exec/src/error.rs crates/exec/src/fault.rs crates/exec/src/program.rs crates/exec/src/store.rs crates/exec/src/team.rs

/root/repo/target/release/deps/libpt_exec-78e01828f1596c19.rmeta: crates/exec/src/lib.rs crates/exec/src/barrier.rs crates/exec/src/comm.rs crates/exec/src/dynamic.rs crates/exec/src/error.rs crates/exec/src/fault.rs crates/exec/src/program.rs crates/exec/src/store.rs crates/exec/src/team.rs

crates/exec/src/lib.rs:
crates/exec/src/barrier.rs:
crates/exec/src/comm.rs:
crates/exec/src/dynamic.rs:
crates/exec/src/error.rs:
crates/exec/src/fault.rs:
crates/exec/src/program.rs:
crates/exec/src/store.rs:
crates/exec/src/team.rs:
