/root/repo/target/release/deps/serde_derive-a82f011e78620bfd.d: compat/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-a82f011e78620bfd.so: compat/serde_derive/src/lib.rs

compat/serde_derive/src/lib.rs:
