/root/repo/target/release/deps/rand-58c516be8a0265fe.d: compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-58c516be8a0265fe.rlib: compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-58c516be8a0265fe.rmeta: compat/rand/src/lib.rs

compat/rand/src/lib.rs:
