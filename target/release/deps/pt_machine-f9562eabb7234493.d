/root/repo/target/release/deps/pt_machine-f9562eabb7234493.d: crates/machine/src/lib.rs crates/machine/src/platforms.rs crates/machine/src/tree.rs

/root/repo/target/release/deps/libpt_machine-f9562eabb7234493.rlib: crates/machine/src/lib.rs crates/machine/src/platforms.rs crates/machine/src/tree.rs

/root/repo/target/release/deps/libpt_machine-f9562eabb7234493.rmeta: crates/machine/src/lib.rs crates/machine/src/platforms.rs crates/machine/src/tree.rs

crates/machine/src/lib.rs:
crates/machine/src/platforms.rs:
crates/machine/src/tree.rs:
