/root/repo/target/release/deps/pt_nas-187a59ba04297f6e.d: crates/nas/src/lib.rs crates/nas/src/classes.rs crates/nas/src/graph.rs crates/nas/src/kernel.rs

/root/repo/target/release/deps/libpt_nas-187a59ba04297f6e.rlib: crates/nas/src/lib.rs crates/nas/src/classes.rs crates/nas/src/graph.rs crates/nas/src/kernel.rs

/root/repo/target/release/deps/libpt_nas-187a59ba04297f6e.rmeta: crates/nas/src/lib.rs crates/nas/src/classes.rs crates/nas/src/graph.rs crates/nas/src/kernel.rs

crates/nas/src/lib.rs:
crates/nas/src/classes.rs:
crates/nas/src/graph.rs:
crates/nas/src/kernel.rs:
