//! Demonstrates the fault-tolerant execution path: an injected panic aborts
//! a collective without wedging the team, and a retry policy rolls the
//! `DataStore` back and re-runs the failed layer — including after a
//! permanent worker loss, where the program is re-planned onto the
//! survivors.
//!
//! Run with `cargo run --release --example fault_recovery`.

use pt_exec::{
    DataStore, FaultPlan, GroupPlan, Program, RetryPolicy, RunOptions, TaskCtx, TaskFn, Team,
};
use std::sync::Arc;
use std::time::Duration;

fn sum_task(out: &'static str) -> Arc<TaskFn> {
    Arc::new(move |ctx: &TaskCtx| {
        let mut v = vec![ctx.rank as f64 + 1.0];
        ctx.comm.allreduce_sum(ctx.rank, &mut v);
        if ctx.rank == 0 {
            ctx.store.put(out, v);
        }
    })
}

fn main() {
    let team = Team::new(4);
    let store = DataStore::new();
    let program = Program::single_layer(vec![GroupPlan::new(0..4, vec![sum_task("sum")])]);

    // 1. A panic inside a collective is a typed error, not a deadlock.
    let opts = RunOptions {
        faults: FaultPlan::new().panic_at(0, 2, 1),
        ..RunOptions::default()
    };
    let err = team.run_with(&program, &store, &opts).unwrap_err();
    println!("injected panic      : Err({err})");

    // 2. The same team keeps working, and a retry policy recovers: the
    //    panic fires on attempt 1 only, attempt 2 succeeds after rollback.
    let opts = RunOptions {
        retry: RetryPolicy::attempts(2).with_backoff(Duration::from_millis(1)),
        faults: FaultPlan::new().panic_at(0, 2, 1),
        ..RunOptions::default()
    };
    let t = team.run_with(&program, &store, &opts).unwrap();
    println!(
        "retry after panic   : sum = {:?} in {:.1?} (2 attempts)",
        store.get("sum").unwrap(),
        t
    );

    // 3. Losing a worker permanently shrinks the team; the retry re-plans
    //    the layer onto the 3 survivors and continues.
    let opts = RunOptions {
        retry: RetryPolicy::attempts(2),
        faults: FaultPlan::new().lose_at(0, 3, 1),
        ..RunOptions::default()
    };
    team.run_with(&program, &store, &opts).unwrap();
    println!(
        "shrink-and-continue : sum = {:?} on {} surviving workers",
        store.get("sum").unwrap(),
        team.alive_workers()
    );
}
