//! Quickstart: specify an M-task program, schedule it, map it, simulate it.
//!
//! Reproduces the paper's running example: the extrapolation method (EPOL)
//! with R = 4 approximations (Fig. 3–6) on a small cluster of two nodes
//! with two dual-core processors each (Fig. 1).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parallel_tasks::core::{DataParallel, LayerScheduler, MappingStrategy};
use parallel_tasks::cost::CostModel;
use parallel_tasks::machine::{platforms, tree::ArchNode};
use parallel_tasks::mtask::{layers, ChainGraph};
use parallel_tasks::ode::{Bruss2d, Epol};
use parallel_tasks::sim::Simulator;

fn main() {
    // --- The platform: 2 nodes x 2 processors x 2 cores (paper Fig. 1) ---
    let spec = platforms::example_2x2x2();
    println!("Platform architecture tree (paper Fig. 7):");
    println!("{}", ArchNode::from_spec(&spec).render(&spec));

    // --- The application: one EPOL time step as an M-task graph ----------
    let sys = Bruss2d::new(64); // n = 8192 ODEs
    let epol = Epol::new(4);
    let graph = epol.step_graph(&sys, 1);
    println!(
        "EPOL R=4 time-step graph: {} tasks, {} edges",
        graph.len(),
        graph.edge_count()
    );

    // Step 1 of the scheduler: contract the micro-step chains (Fig. 5).
    let contracted = ChainGraph::contract(&graph);
    println!(
        "After chain contraction: {} nodes (the 4 micro-step chains merged)",
        contracted.graph.len()
    );
    // Step 2: layers of independent tasks.
    let ls = layers(&contracted.graph);
    println!(
        "Layers: {:?} (chains | combine)",
        ls.iter().map(Vec::len).collect::<Vec<_>>()
    );

    // --- Schedule: the paper's Algorithm 1 -------------------------------
    let model = CostModel::new(&spec);
    let schedule = LayerScheduler::new(&model).schedule(&graph);
    println!("\nComputed schedule (groups per layer):");
    for (i, layer) in schedule.layers.iter().enumerate() {
        let summary: Vec<String> = layer
            .assignments
            .iter()
            .zip(&layer.group_sizes)
            .map(|(tasks, size)| {
                let names: Vec<&str> = tasks.iter().map(|t| graph.task(*t).name.as_str()).collect();
                format!("{size} cores <- {}", names.join(", "))
            })
            .collect();
        println!("  layer {i}: {}", summary.join("  |  "));
    }

    // --- Map and simulate under all three mapping strategies -------------
    let sim = Simulator::new(&model);
    println!("\nSimulated time per step on {}:", spec.name);
    for strategy in [
        MappingStrategy::Consecutive,
        MappingStrategy::Mixed(2),
        MappingStrategy::Scattered,
    ] {
        let mapping = strategy.mapping(&spec, spec.total_cores());
        let report = sim.simulate_layered(&graph, &schedule, &mapping);
        println!(
            "  task parallel, {:<12} {:>10.3} ms  (redistribution {:>7.3} ms)",
            strategy.name(),
            report.makespan * 1e3,
            report.total_redist * 1e3
        );
    }
    let dp = DataParallel::schedule(&graph, spec.total_cores());
    let mapping = MappingStrategy::Consecutive.mapping(&spec, spec.total_cores());
    let report = sim.simulate_layered(&graph, &dp, &mapping);
    println!(
        "  data parallel, consecutive  {:>10.3} ms",
        report.makespan * 1e3
    );

    // --- Timeline of the task-parallel run (cf. paper Fig. 6) ------------
    let mapping = MappingStrategy::Consecutive.mapping(&spec, spec.total_cores());
    let report = sim.simulate_layered(&graph, &schedule, &mapping);
    println!("\nSimulated timeline (consecutive mapping):");
    print!("{}", parallel_tasks::sim::render_gantt(&report, &graph, 48));
}
