//! NAS multi-zone exploration: how many core groups, and which mapping?
//!
//! Builds the SP-MZ and BT-MZ workloads (class A for a quick run), sweeps
//! the group count with the paper's blocked zone assignment, simulates on
//! the modelled CHiC cluster, and also runs a *real* per-zone Jacobi
//! stencil on the thread runtime to validate the zone kernel.
//!
//! ```text
//! cargo run --release --example nas_multizone
//! ```

use parallel_tasks::core::MappingStrategy;
use parallel_tasks::cost::CostModel;
use parallel_tasks::machine::platforms;
use parallel_tasks::nas::{bt_mz, sp_mz, Class, ZoneGrid};
use parallel_tasks::sim::Simulator;

fn main() {
    let cores = 64;
    let machine = platforms::chic().with_cores(cores);
    let model = CostModel::new(&machine);
    let sim = Simulator::new(&model);
    let steps = 2;

    for mz in [sp_mz(Class::A), bt_mz(Class::A)] {
        println!(
            "\n{} class A: {} zones, imbalance {:.1}x, {} grid points",
            mz.name,
            mz.zones.len(),
            mz.imbalance(),
            mz.total_points()
        );
        let graph = mz.step_graph(steps);
        println!("  groups  consecutive      mixed(2)     scattered   [ms/step]");
        for g in [1usize, 2, 4, 8, 16] {
            let sched = mz.blocked_schedule(steps, cores, g);
            let mut row = format!("  g={g:<5}");
            for m in [
                MappingStrategy::Consecutive,
                MappingStrategy::Mixed(2),
                MappingStrategy::Scattered,
            ] {
                let mapping = m.mapping(&machine, cores);
                let rep = sim.simulate_layered(&graph, &sched, &mapping);
                row.push_str(&format!("{:>13.3}", rep.makespan / steps as f64 * 1e3));
            }
            println!("{row}");
        }
    }

    // --- A real zone kernel run ------------------------------------------
    println!("\nReal Jacobi smoothing of one zone (validating the kernel):");
    let mz = sp_mz(Class::A);
    let z = &mz.zones[0];
    let mut grid = ZoneGrid::new(z.nx.min(32), z.ny.min(32), z.nz.min(8));
    grid.set_west_halo(&vec![1.0; (grid.ny + 2) * grid.nz]);
    let before = grid.residual();
    for _ in 0..50 {
        grid.jacobi_step();
    }
    let after = grid.residual();
    println!(
        "  zone {}x{}x{}: residual {:.4} -> {:.4} after 50 sweeps",
        grid.nx, grid.ny, grid.nz, before, after
    );
    assert!(after < before);
}
