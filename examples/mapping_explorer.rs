//! Mapping explorer: how the physical core sequence of each strategy looks
//! on a real platform, and what it costs for each class of communication.
//!
//! Prints the sequences of the paper's Fig. 9–11, then measures (with the
//! cost model) a global allgather, concurrent group allgathers and the
//! orthogonal exchange under every strategy on all three modelled clusters.
//!
//! ```text
//! cargo run --release --example mapping_explorer
//! ```

use parallel_tasks::core::MappingStrategy;
use parallel_tasks::cost::{CommContext, CostModel};
use parallel_tasks::machine::{platforms, CoreId};

fn main() {
    // --- The sequences of Fig. 9–11 on the 4-node example platform -------
    let fig = platforms::example_4x2x2();
    println!(
        "Physical core sequences on {} (labels nid.pid.cid):",
        fig.name
    );
    for s in [
        MappingStrategy::Consecutive,
        MappingStrategy::Scattered,
        MappingStrategy::Mixed(2),
    ] {
        let seq = s.core_sequence(&fig);
        let labels: Vec<String> = seq
            .iter()
            .take(8)
            .map(|&c| fig.label(c).to_string())
            .collect();
        println!("  {:<12} {} ...", s.name(), labels.join(" "));
    }

    // --- Communication costs per strategy on the evaluation platforms ----
    for machine in [platforms::chic(), platforms::altix(), platforms::juropa()] {
        let cores = 128.min(machine.total_cores());
        let spec = machine.with_cores(cores / machine.cores_per_node() * machine.cores_per_node());
        let model = CostModel::new(&spec);
        let ctx = CommContext::uniform(&spec);
        let bytes = 1 << 21; // 2 MiB gathered
        println!(
            "\n{} ({} cores): communication times [ms] per strategy",
            spec.name, cores
        );
        println!(
            "  {:<12} {:>12} {:>14} {:>14}",
            "strategy", "global AG", "4 group AGs", "orthogonal"
        );
        for s in MappingStrategy::all_for(&spec) {
            let mapping = s.mapping(&spec, cores);
            let global = model.allgather(&ctx, &mapping.sequence, bytes as f64);
            let groups: Vec<Vec<CoreId>> = (0..4)
                .map(|g| mapping.map_range(g * cores / 4..(g + 1) * cores / 4))
                .collect();
            let group_t = model.multi_allgather(&groups, bytes as f64 / 4.0);
            let ortho = model.orthogonal_exchange(&groups, bytes as f64 / 4.0);
            println!(
                "  {:<12} {:>12.3} {:>14.3} {:>14.3}",
                s.name(),
                global * 1e3,
                group_t * 1e3,
                ortho * 1e3
            );
        }
    }
    println!(
        "\nReading: consecutive wins global/group collectives (ring neighbours stay \
         intra-node); scattered wins the orthogonal exchange (position sets become \
         node-local) — the trade-off behind the paper's mapping strategies."
    );
}
