//! Solve the 2-D Brusselator with the extrapolation method on the
//! shared-memory M-task runtime — a real parallel ODE solve, not a
//! simulation.
//!
//! The program builds the paper's task-parallel execution scheme (R/2
//! groups of workers computing paired micro-step chains, then a
//! data-parallel combine) and runs it on a worker-thread team, comparing
//! against the sequential solver and the adaptive integrator.
//!
//! ```text
//! cargo run --release --example ode_extrapolation
//! ```

use parallel_tasks::exec::{DataStore, Team};
use parallel_tasks::ode::{max_err, Bruss2d, Epol, OdeSystem};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // At least 2 workers so the two chain groups exist; threads timeslice
    // fine on smaller machines.
    let workers = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .clamp(2, 8);
    let sys_concrete = Bruss2d::new(96); // n = 18 432 ODEs
    let y0 = sys_concrete.initial_value();
    let epol = Epol::new(4);
    let h = 1e-4;
    let steps = 40;

    // --- Sequential reference -------------------------------------------
    let t0 = Instant::now();
    let mut seq = y0.clone();
    let mut t = 0.0;
    for _ in 0..steps {
        seq = epol.step(&sys_concrete, t, &seq, h);
        t += h;
    }
    let seq_time = t0.elapsed();
    println!(
        "sequential : {steps} steps of EPOL R=4 on n={} in {:.1} ms",
        sys_concrete.dim(),
        seq_time.as_secs_f64() * 1e3
    );

    // --- Task-parallel run on the thread runtime -------------------------
    let sys: Arc<dyn OdeSystem> = Arc::new(sys_concrete.clone());
    let team = Team::new(workers);
    let store = DataStore::new();
    store.put("t", vec![0.0]);
    store.put("h", vec![h]);
    store.put("eta", y0.clone());
    // R/2 = 2 groups (the schedule of the paper's Fig. 6, middle).
    let groups = [0..workers / 2, workers / 2..workers];
    let t0 = Instant::now();
    epol.run_spmd(&team, &sys, &groups, &store, steps).unwrap();
    let par_time = t0.elapsed();
    let eta = store.get("eta").expect("eta");
    println!(
        "task par.  : same integration on {workers} workers (2 groups) in {:.1} ms  (speedup {:.2})",
        par_time.as_secs_f64() * 1e3,
        seq_time.as_secs_f64() / par_time.as_secs_f64()
    );
    println!(
        "             max |SPMD - sequential| = {:.3e}",
        max_err(&eta, &seq)
    );

    // --- Adaptive step-size control (paper §2.2.3) ------------------------
    let (_, accepted) =
        epol.integrate_adaptive(&sys_concrete, 0.0, &y0, steps as f64 * h, h / 4.0, 1e-8);
    println!(
        "adaptive   : same interval integrated with error control in {accepted} accepted steps"
    );
}
